//! In-memory B+ tree over 64-bit set hashes with duplicate-key support.
//!
//! The paper's index-task competitor (§8.1.2): keys are permutation-invariant
//! hashes of sets, values are collection positions; duplicate keys (the same
//! set stored at several positions, or a hash shared by several subsets) all
//! retain their positions. Leaves are chained for ordered scans.

use serde::{Deserialize, Serialize};

/// Arena index of a node.
type NodeId = usize;

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Internal {
        /// Separator keys; `children.len() == keys.len() + 1`.
        keys: Vec<u64>,
        children: Vec<NodeId>,
    },
    Leaf {
        keys: Vec<u64>,
        /// Positions per key, ascending (first occurrence first).
        values: Vec<Vec<u32>>,
        next: Option<NodeId>,
    },
}

/// A B+ tree multimap `u64 -> [u32]`.
///
/// ```
/// use setlearn_baselines::{set_hash, BPlusTree};
///
/// let mut index = BPlusTree::new(100);
/// index.insert(set_hash(&[1, 2, 3]), 7);
/// index.insert(set_hash(&[1, 2, 3]), 2); // duplicate key, earlier position
/// assert_eq!(index.first_position(set_hash(&[1, 2, 3])), Some(2));
/// assert_eq!(index.last_position(set_hash(&[1, 2, 3])), Some(7));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: NodeId,
    /// Maximum number of keys per node before splitting.
    max_keys: usize,
    /// Total number of (key, position) pairs.
    len: usize,
}

impl BPlusTree {
    /// Creates an empty tree. `order` is the branching factor (maximum
    /// children per internal node); the paper's competitor uses 100.
    ///
    /// # Panics
    /// If `order < 4`.
    pub fn new(order: usize) -> Self {
        assert!(order >= 4, "B+ tree order must be at least 4");
        BPlusTree {
            nodes: vec![Node::Leaf { keys: Vec::new(), values: Vec::new(), next: None }],
            root: 0,
            max_keys: order - 1,
            len: 0,
        }
    }

    /// Number of stored (key, position) pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a (key, position) pair; duplicates accumulate in insertion
    /// order of positions (kept sorted ascending).
    pub fn insert(&mut self, key: u64, pos: u32) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, pos) {
            let old_root = self.root;
            self.nodes.push(Node::Internal { keys: vec![sep], children: vec![old_root, right] });
            self.root = self.nodes.len() - 1;
        }
        self.len += 1;
    }

    fn insert_rec(&mut self, node: NodeId, key: u64, pos: u32) -> Option<(u64, NodeId)> {
        match &mut self.nodes[node] {
            Node::Leaf { keys, values, .. } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let v = &mut values[i];
                        let at = v.partition_point(|&p| p < pos);
                        v.insert(at, pos);
                        None
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, vec![pos]);
                        if keys.len() > self.max_keys {
                            Some(self.split_leaf(node))
                        } else {
                            None
                        }
                    }
                }
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                let child = children[idx];
                let split = self.insert_rec(child, key, pos)?;
                let (sep, right) = split;
                if let Node::Internal { keys, children } = &mut self.nodes[node] {
                    let at = keys.partition_point(|&k| k <= sep);
                    keys.insert(at, sep);
                    children.insert(at + 1, right);
                    if keys.len() > self.max_keys {
                        return Some(self.split_internal(node));
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: NodeId) -> (u64, NodeId) {
        let new_id = self.nodes.len();
        if let Node::Leaf { keys, values, next } = &mut self.nodes[node] {
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid);
            let right_values = values.split_off(mid);
            let sep = right_keys[0];
            let right_next = *next;
            *next = Some(new_id);
            self.nodes.push(Node::Leaf {
                keys: right_keys,
                values: right_values,
                next: right_next,
            });
            (sep, new_id)
        } else {
            unreachable!("split_leaf on internal node")
        }
    }

    fn split_internal(&mut self, node: NodeId) -> (u64, NodeId) {
        let new_id = self.nodes.len();
        if let Node::Internal { keys, children } = &mut self.nodes[node] {
            let mid = keys.len() / 2;
            let sep = keys[mid];
            let right_keys = keys.split_off(mid + 1);
            keys.pop(); // remove promoted separator
            let right_children = children.split_off(mid + 1);
            self.nodes.push(Node::Internal { keys: right_keys, children: right_children });
            (sep, new_id)
        } else {
            unreachable!("split_internal on leaf node")
        }
    }

    fn find_leaf(&self, key: u64) -> NodeId {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Internal { keys, children } => {
                    node = children[keys.partition_point(|&k| k <= key)];
                }
            }
        }
    }

    /// All positions stored under `key`, ascending.
    pub fn get(&self, key: u64) -> Option<&[u32]> {
        if let Node::Leaf { keys, values, .. } = &self.nodes[self.find_leaf(key)] {
            keys.binary_search(&key).ok().map(|i| values[i].as_slice())
        } else {
            unreachable!()
        }
    }

    /// Smallest position stored under `key` — the "first occurrence" answer
    /// of the index task.
    pub fn first_position(&self, key: u64) -> Option<u32> {
        self.get(key).map(|v| v[0])
    }

    /// Largest position stored under `key` — the "last occurrence" answer.
    pub fn last_position(&self, key: u64) -> Option<u32> {
        self.get(key).map(|v| *v.last().expect("non-empty positions"))
    }

    /// Iterates `(key, positions)` in ascending key order via the leaf chain.
    pub fn iter(&self) -> BPlusIter<'_> {
        // Find leftmost leaf.
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => break,
                Node::Internal { children, .. } => node = children[0],
            }
        }
        BPlusIter { tree: self, leaf: Some(node), idx: 0 }
    }

    /// All positions for keys in `[lo, hi]`.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, &[u32])> {
        let mut out = Vec::new();
        let mut leaf = Some(self.find_leaf(lo));
        while let Some(id) = leaf {
            if let Node::Leaf { keys, values, next } = &self.nodes[id] {
                for (k, v) in keys.iter().zip(values.iter()) {
                    if *k > hi {
                        return out;
                    }
                    if *k >= lo {
                        out.push((*k, v.as_slice()));
                    }
                }
                leaf = *next;
            }
        }
        out
    }

    /// Tree height (1 = a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        while let Node::Internal { children, .. } = &self.nodes[node] {
            node = children[0];
            h += 1;
        }
        h
    }

    /// Approximate resident bytes: keys, position vectors, child pointers and
    /// per-node overhead. This mirrors how the paper reports competitor
    /// memory (structure size, not process RSS).
    pub fn size_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for n in &self.nodes {
            total += std::mem::size_of::<Node>();
            match n {
                Node::Internal { keys, children } => {
                    total += keys.len() * 8 + children.len() * std::mem::size_of::<NodeId>();
                }
                Node::Leaf { keys, values, .. } => {
                    total += keys.len() * 8;
                    total += values
                        .iter()
                        .map(|v| v.len() * 4 + std::mem::size_of::<Vec<u32>>())
                        .sum::<usize>();
                }
            }
        }
        total
    }

    /// Validates B+ tree invariants (test/debug helper): sorted keys, child
    /// counts, and leaf-chain ordering. Panics on violation.
    pub fn check_invariants(&self) {
        self.check_node(self.root, None, None);
        // Leaf chain strictly ascending.
        let mut prev: Option<u64> = None;
        for (k, _) in self.iter() {
            if let Some(p) = prev {
                assert!(p < k, "leaf chain out of order: {p} !< {k}");
            }
            prev = Some(k);
        }
    }

    fn check_node(&self, node: NodeId, lo: Option<u64>, hi: Option<u64>) {
        match &self.nodes[node] {
            Node::Leaf { keys, values, .. } => {
                assert_eq!(keys.len(), values.len());
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted leaf");
                for &k in keys {
                    assert!(lo.is_none_or(|l| k >= l), "leaf key below bound");
                    assert!(hi.is_none_or(|h| k < h), "leaf key above bound");
                }
                for v in values {
                    assert!(!v.is_empty());
                    assert!(v.windows(2).all(|w| w[0] <= w[1]), "positions unsorted");
                }
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "child count");
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted internal");
                for (i, &c) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    self.check_node(c, clo, chi);
                }
            }
        }
    }
}

/// Ordered iterator over `(key, positions)`.
pub struct BPlusIter<'a> {
    tree: &'a BPlusTree,
    leaf: Option<NodeId>,
    idx: usize,
}

impl<'a> Iterator for BPlusIter<'a> {
    type Item = (u64, &'a [u32]);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let id = self.leaf?;
            if let Node::Leaf { keys, values, next } = &self.tree.nodes[id] {
                if self.idx < keys.len() {
                    let out = (keys[self.idx], values[self.idx].as_slice());
                    self.idx += 1;
                    return Some(out);
                }
                self.leaf = *next;
                self.idx = 0;
            } else {
                unreachable!()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, SeedableRng};

    #[test]
    fn insert_and_get_small() {
        let mut t = BPlusTree::new(4);
        for (k, v) in [(5u64, 50u32), (1, 10), (9, 90), (3, 30)] {
            t.insert(k, v);
        }
        assert_eq!(t.get(5), Some(&[50u32][..]));
        assert_eq!(t.get(2), None);
        assert_eq!(t.len(), 4);
        t.check_invariants();
    }

    #[test]
    fn duplicate_keys_keep_all_positions_sorted() {
        let mut t = BPlusTree::new(4);
        t.insert(7, 30);
        t.insert(7, 10);
        t.insert(7, 20);
        assert_eq!(t.get(7), Some(&[10u32, 20, 30][..]));
        assert_eq!(t.first_position(7), Some(10));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn many_random_inserts_stay_consistent() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut keys: Vec<u64> = (0..5_000).collect();
        keys.shuffle(&mut rng);
        let mut t = BPlusTree::new(8);
        for &k in &keys {
            t.insert(k, (k * 2) as u32);
        }
        t.check_invariants();
        assert!(t.height() > 2, "height {}", t.height());
        for &k in &keys {
            assert_eq!(t.get(k), Some(&[(k * 2) as u32][..]));
        }
        // Ordered iteration covers everything exactly once.
        let collected: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(collected, (0..5_000).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan() {
        let mut t = BPlusTree::new(4);
        for k in 0..100u64 {
            t.insert(k, k as u32);
        }
        let r = t.range(10, 19);
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, 10);
        assert_eq!(r[9].0, 19);
        assert!(t.range(200, 300).is_empty());
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants();
    }

    #[test]
    fn size_grows_with_content() {
        let mut t = BPlusTree::new(16);
        let base = t.size_bytes();
        for k in 0..1000u64 {
            t.insert(k, k as u32);
        }
        assert!(t.size_bytes() > base + 1000 * 8);
    }

    #[test]
    #[should_panic(expected = "order must be at least 4")]
    fn tiny_order_panics() {
        let _ = BPlusTree::new(2);
    }
}
