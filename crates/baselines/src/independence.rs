//! Independence-assumption cardinality estimator — the "textbook" baseline
//! that learned estimators are built to beat.
//!
//! It stores only per-element selectivities and estimates
//! `card(q) ≈ N · Π_e sel(e)`, which is exact when elements co-occur
//! independently and arbitrarily wrong when they are correlated (the
//! `abl_correlation` bench shows the gap against the learned model).

use serde::{Deserialize, Serialize};
use setlearn_data::SetCollection;

/// Per-element-selectivity estimator under the independence assumption.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndependenceEstimator {
    /// `freq[e] / N` per element.
    selectivity: Vec<f64>,
    num_sets: f64,
}

impl IndependenceEstimator {
    /// Computes per-element selectivities from the collection.
    pub fn build(collection: &SetCollection) -> Self {
        let mut freq = vec![0u64; collection.num_elements() as usize];
        for (_, s) in collection.iter() {
            for &e in s {
                freq[e as usize] += 1;
            }
        }
        let n = collection.len().max(1) as f64;
        IndependenceEstimator {
            selectivity: freq.iter().map(|&f| f as f64 / n).collect(),
            num_sets: collection.len() as f64,
        }
    }

    /// `N · Π sel(e)` over the (canonical) query elements; out-of-vocabulary
    /// elements contribute selectivity 0.
    pub fn estimate(&self, q: &[u32]) -> f64 {
        let mut sel = 1.0;
        for &e in q {
            sel *= self.selectivity.get(e as usize).copied().unwrap_or(0.0);
        }
        self.num_sets * sel
    }

    /// Struct bytes (one f64 per vocabulary entry).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.selectivity.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn_data::GeneratorConfig;

    #[test]
    fn exact_for_single_elements() {
        let c = GeneratorConfig::rw(500, 3).generate();
        let est = IndependenceEstimator::build(&c);
        for e in 0..20u32 {
            let truth = c.cardinality(&[e]) as f64;
            assert!((est.estimate(&[e]) - truth).abs() < 1e-6, "element {e}");
        }
    }

    #[test]
    fn underestimates_correlated_pairs() {
        let c = GeneratorConfig {
            num_sets: 3_000,
            vocab: 64,
            zipf_s: 0.5,
            min_set_size: 4,
            max_set_size: 6,
            seed: 7,
        }
        .generate_correlated(0.95);
        let est = IndependenceEstimator::build(&c);
        // Pick the most frequent correlated pair.
        let truth = c.cardinality(&[0, 1]) as f64;
        if truth >= 10.0 {
            let guess = est.estimate(&[0, 1]);
            assert!(
                guess < truth * 0.8,
                "independence should underestimate a correlated pair: {guess} vs {truth}"
            );
        }
    }

    #[test]
    fn out_of_vocabulary_is_zero() {
        let c = GeneratorConfig::sd(100, 1).generate();
        let est = IndependenceEstimator::build(&c);
        assert_eq!(est.estimate(&[c.num_elements() + 5]), 0.0);
    }
}
