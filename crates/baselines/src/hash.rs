//! Permutation-invariant hashing of sets (paper §8.1.2).
//!
//! Traditional structures index a set through a single key. Two options
//! fulfill permutation invariance:
//!
//! * [`set_hash`] — hash the *canonically sorted* elements with FNV-1a; this
//!   is the "concatenate sorted elements and hash them" strategy and is the
//!   default used by the competitors.
//! * [`commutative_hash`] — order-free combination of per-element hashes
//!   (sum/xor mix), usable when inputs cannot be sorted first.

/// FNV-1a over the sorted element ids.
///
/// # Panics (debug)
/// If the input is not canonical (sorted, duplicate-free).
pub fn set_hash(set: &[u32]) -> u64 {
    debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "set must be canonical");
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &e in set {
        for b in e.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Order-independent hash: combines per-element avalanche hashes with
/// wrapping addition and xor, so any permutation yields the same digest.
pub fn commutative_hash(set: &[u32]) -> u64 {
    let mut sum = 0u64;
    let mut xor = 0u64;
    for &e in set {
        let h = splitmix64(e as u64);
        sum = sum.wrapping_add(h);
        xor ^= h.rotate_left(17);
    }
    splitmix64(sum ^ xor ^ (set.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// SplitMix64 finalizer — a cheap full-avalanche mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_hash_distinguishes_sets() {
        assert_ne!(set_hash(&[1, 2, 3]), set_hash(&[1, 2, 4]));
        assert_ne!(set_hash(&[1, 2]), set_hash(&[1, 2, 3]));
        assert_ne!(set_hash(&[]), set_hash(&[0]));
    }

    #[test]
    fn commutative_hash_is_order_free() {
        // commutative_hash does not require canonical input.
        assert_eq!(commutative_hash(&[3, 1, 2]), commutative_hash(&[2, 3, 1]));
        assert_eq!(commutative_hash(&[7]), commutative_hash(&[7]));
    }

    #[test]
    fn commutative_hash_distinguishes_multiplicity_via_len() {
        assert_ne!(commutative_hash(&[1, 2]), commutative_hash(&[1, 2, 0]));
    }

    #[test]
    fn hashes_agree_between_calls() {
        let s = [5u32, 9, 1000];
        assert_eq!(set_hash(&s), set_hash(&s));
    }

    #[test]
    fn splitmix_avalanche_nonzero() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
