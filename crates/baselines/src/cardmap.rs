//! HashMap competitor for the cardinality task (§8.1.2).
//!
//! Stores every subset of every set (up to a size cap) with its exact count.
//! Accuracy is always 1 — the paper's point is the enormous memory this
//! costs relative to the learned estimators (Table 3).

use crate::hash::set_hash;
use serde::{Deserialize, Serialize};
use setlearn_data::{set::for_each_subset, SetCollection};
use std::collections::HashMap;

/// Exact subset-cardinality store keyed by permutation-invariant set hash.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CardinalityMap {
    counts: HashMap<u64, u64>,
    max_query_size: usize,
}

impl CardinalityMap {
    /// Enumerates and counts all subsets up to `max_query_size`.
    pub fn build(collection: &SetCollection, max_query_size: usize) -> Self {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for (_, set) in collection.iter() {
            for_each_subset(set, max_query_size, |sub| {
                *counts.entry(set_hash(sub)).or_insert(0) += 1;
            });
        }
        CardinalityMap { counts, max_query_size }
    }

    /// Exact cardinality of a canonical query; 0 for unseen or oversized
    /// queries.
    pub fn cardinality(&self, q: &[u32]) -> u64 {
        if q.len() > self.max_query_size {
            return 0;
        }
        self.counts.get(&set_hash(q)).copied().unwrap_or(0)
    }

    /// Number of distinct subsets stored.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Size cap the map was built with.
    pub fn max_query_size(&self) -> usize {
        self.max_query_size
    }

    /// Approximate resident bytes: hashmap buckets at observed load plus
    /// key/value payload.
    pub fn size_bytes(&self) -> usize {
        // Each occupied entry: 8B key + 8B value + ~1B control byte; capacity
        // overhead approximated by the 7/8 max load factor of hashbrown.
        let cap = (self.counts.len() as f64 / 0.875).ceil() as usize;
        std::mem::size_of::<Self>() + cap * (8 + 8 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn_data::GeneratorConfig;

    #[test]
    fn exact_counts_match_oracle() {
        let c = GeneratorConfig::rw(300, 5).generate();
        let m = CardinalityMap::build(&c, 3);
        for (_, set) in c.iter().take(30) {
            for_each_subset(set, 3, |sub| {
                assert_eq!(m.cardinality(sub), c.cardinality(sub), "subset {sub:?}");
            });
        }
    }

    #[test]
    fn unseen_query_is_zero() {
        let c = SetCollection::new(vec![vec![0, 1], vec![1, 2]], 4);
        let m = CardinalityMap::build(&c, 2);
        assert_eq!(m.cardinality(&[0, 2]), 0);
        assert_eq!(m.cardinality(&[3]), 0);
    }

    #[test]
    fn oversized_query_is_zero() {
        let c = SetCollection::new(vec![vec![0, 1, 2]], 4);
        let m = CardinalityMap::build(&c, 2);
        assert_eq!(m.cardinality(&[0, 1, 2]), 0);
    }

    #[test]
    fn memory_scales_with_subset_count() {
        let c = GeneratorConfig::rw(2_000, 5).generate();
        let small = CardinalityMap::build(&c, 2);
        let large = CardinalityMap::build(&c, 4);
        assert!(large.len() > small.len());
        assert!(large.size_bytes() > small.size_bytes());
    }
}
