//! Loss functions: MSE, MAE, binary cross-entropy, and the q-error loss the
//! paper trains its regression tasks with (Table 1).

use serde::{Deserialize, Serialize};

/// A scalar loss over a batch of predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Binary cross-entropy over sigmoid outputs (Bloom-filter task).
    BinaryCrossEntropy,
    /// Q-error in de-scaled log space (index / cardinality tasks).
    ///
    /// Both prediction and target are min-max-scaled log values in `[0, 1]`;
    /// `span = max_log - min_log` de-scales the difference, so
    /// `q = exp(|Δlog|) = max(ŷ/y, y/ŷ)` over the original values.
    QError {
        /// `max_log - min_log` from the target scaler.
        span: f32,
    },
}

impl Loss {
    /// Computes the mean loss and `dL/dpred` for a batch.
    ///
    /// # Panics
    /// If `pred` and `target` lengths differ or the batch is empty.
    pub fn loss_and_grad(&self, pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
        assert_eq!(pred.len(), target.len(), "pred/target length mismatch");
        assert!(!pred.is_empty(), "empty batch");
        let n = pred.len() as f32;
        let mut grad = vec![0.0f32; pred.len()];
        let mut total = 0.0f32;
        match *self {
            Loss::Mse => {
                for ((g, &p), &t) in grad.iter_mut().zip(pred).zip(target) {
                    let d = p - t;
                    total += d * d;
                    *g = 2.0 * d / n;
                }
            }
            Loss::Mae => {
                for ((g, &p), &t) in grad.iter_mut().zip(pred).zip(target) {
                    let d = p - t;
                    total += d.abs();
                    *g = d.signum() / n;
                }
            }
            Loss::BinaryCrossEntropy => {
                const EPS: f32 = 1e-7;
                for ((g, &p), &t) in grad.iter_mut().zip(pred).zip(target) {
                    let p = p.clamp(EPS, 1.0 - EPS);
                    total += -(t * p.ln() + (1.0 - t) * (1.0 - p).ln());
                    *g = (p - t) / (p * (1.0 - p)) / n;
                }
            }
            Loss::QError { span } => {
                // Cap the de-scaled log difference so exp() cannot overflow
                // early in training; 20 nats is a q-error of ~4.8e8, far
                // beyond anything informative.
                const MAX_NATS: f32 = 20.0;
                for ((g, &p), &t) in grad.iter_mut().zip(pred).zip(target) {
                    let d = (p - t) * span;
                    let a = d.abs().min(MAX_NATS);
                    let q = a.exp();
                    total += q;
                    // f32::signum(0.0) is 1.0, so zero the gradient explicitly
                    // at the loss minimum.
                    let sign = if d == 0.0 { 0.0 } else { d.signum() };
                    *g = sign * q * span / n;
                }
            }
        }
        (total / n, grad)
    }

    /// The batch-mean loss only.
    pub fn loss(&self, pred: &[f32], target: &[f32]) -> f32 {
        self.loss_and_grad(pred, target).0
    }
}

/// The q-error metric `max(est/true, true/est)` over *original-scale* values,
/// as reported throughout the paper's evaluation. Values below `floor` are
/// clamped (the paper's convention of treating estimates under 1 as 1).
pub fn q_error(estimate: f64, truth: f64, floor: f64) -> f64 {
    let e = estimate.max(floor);
    let t = truth.max(floor);
    (e / t).max(t / e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_perfect_prediction_is_zero() {
        let (l, g) = Loss::Mse.loss_and_grad(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(l, 0.0);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = [0.3f32, 0.8];
        let target = [0.5f32, 0.1];
        let (_, g) = Loss::Mse.loss_and_grad(&pred, &target);
        let eps = 1e-3;
        let mut p2 = pred;
        p2[0] += eps;
        let plus = Loss::Mse.loss(&p2, &target);
        p2[0] -= 2.0 * eps;
        let minus = Loss::Mse.loss(&p2, &target);
        assert!((g[0] - (plus - minus) / (2.0 * eps)).abs() < 1e-3);
    }

    #[test]
    fn bce_is_low_for_confident_correct_and_high_for_confident_wrong() {
        let good = Loss::BinaryCrossEntropy.loss(&[0.99, 0.01], &[1.0, 0.0]);
        let bad = Loss::BinaryCrossEntropy.loss(&[0.01, 0.99], &[1.0, 0.0]);
        assert!(good < 0.1);
        assert!(bad > 2.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let pred = [0.3f32];
        let target = [1.0f32];
        let (_, g) = Loss::BinaryCrossEntropy.loss_and_grad(&pred, &target);
        let eps = 1e-4;
        let plus = Loss::BinaryCrossEntropy.loss(&[0.3 + eps], &target);
        let minus = Loss::BinaryCrossEntropy.loss(&[0.3 - eps], &target);
        assert!((g[0] - (plus - minus) / (2.0 * eps)).abs() < 1e-2);
    }

    #[test]
    fn qerror_loss_is_one_at_perfect_prediction() {
        let loss = Loss::QError { span: 5.0 };
        let (l, g) = loss.loss_and_grad(&[0.4], &[0.4]);
        assert_eq!(l, 1.0); // exp(0) = 1 — q-error's minimum.
        assert_eq!(g, vec![0.0]);
    }

    #[test]
    fn qerror_gradient_matches_finite_difference() {
        let loss = Loss::QError { span: 3.0 };
        let pred = [0.6f32];
        let target = [0.4f32];
        let (_, g) = loss.loss_and_grad(&pred, &target);
        let eps = 1e-4;
        let plus = loss.loss(&[0.6 + eps], &target);
        let minus = loss.loss(&[0.6 - eps], &target);
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((g[0] - numeric).abs() < 1e-2 * numeric.abs().max(1.0));
    }

    #[test]
    fn qerror_is_capped() {
        let loss = Loss::QError { span: 100.0 };
        let (l, _) = loss.loss_and_grad(&[1.0], &[0.0]);
        assert!(l.is_finite());
    }

    #[test]
    fn q_error_metric_symmetric_and_floored() {
        assert_eq!(q_error(10.0, 5.0, 1.0), 2.0);
        assert_eq!(q_error(5.0, 10.0, 1.0), 2.0);
        assert_eq!(q_error(0.0, 1.0, 1.0), 1.0); // floored estimate
        assert!(q_error(3.0, 3.0, 1.0) == 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Loss::Mse.loss_and_grad(&[1.0], &[1.0, 2.0]);
    }
}
