//! Dense row-major `f32` matrices sized for small-model training.
//!
//! The models in this workspace are tiny (embedding dims 2–32, hidden layers
//! 8–256), so a straightforward cache-friendly `ikj` GEMM outperforms the
//! overhead of pulling in a BLAS. All shapes are checked at runtime with
//! panics, matching the internal-invariant style of the layer code that owns
//! every call site.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self * other` — `[m x k] * [k x n] -> [m x n]`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // ikj order: the innermost loop walks both `other` and `out` rows
        // contiguously, which the compiler can vectorize.
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * w` where `w` is a borrowed row-major `[k x n]` buffer.
    ///
    /// Identical floating-point operation order to [`Matrix::matmul`]; exists
    /// so inference paths can multiply against parameter buffers without
    /// cloning them into a temporary [`Matrix`] per call.
    ///
    /// # Panics
    /// If `self.cols != w_rows` or `w.len() != w_rows * w_cols`.
    pub fn matmul_slice(&self, w: &[f32], w_rows: usize, w_cols: usize) -> Matrix {
        assert_eq!(self.cols, w_rows, "matmul shape mismatch");
        assert_eq!(w.len(), w_rows * w_cols, "matrix data length mismatch");
        let (m, k, n) = (self.rows, self.cols, w_cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &w[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * other` — `[k x m]ᵀ * [k x n] -> [m x n]`.
    ///
    /// Used for weight gradients (`Xᵀ·dZ`) without materializing a transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` — `[m x k] * [n x k]ᵀ -> [m x n]`.
    ///
    /// Used for input gradients (`dZ·Wᵀ`) without materializing a transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// `self * wᵀ` where `w` is a borrowed row-major `[n x k]` buffer.
    ///
    /// Identical floating-point operation order to [`Matrix::matmul_nt`];
    /// the borrowed twin used by backprop's `dZ·Wᵀ` to skip the per-call
    /// weight clone.
    ///
    /// # Panics
    /// If `self.cols != w_cols` or `w.len() != w_rows * w_cols`.
    pub fn matmul_nt_slice(&self, w: &[f32], w_rows: usize, w_cols: usize) -> Matrix {
        assert_eq!(self.cols, w_cols, "matmul_nt shape mismatch");
        assert_eq!(w.len(), w_rows * w_cols, "matrix data length mismatch");
        let (m, k, n) = (self.rows, self.cols, w_rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &w[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Adds `vec` (length `cols`) to every row in place.
    pub fn add_row_vector(&mut self, vec: &[f32]) {
        assert_eq!(vec.len(), self.cols, "row vector length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in row.iter_mut().zip(vec.iter()) {
                *o += v;
            }
        }
    }

    /// Column sums — returns a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Element-wise product in place.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn hconcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hconcat of zero matrices");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "hconcat row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.data[r * cols + offset..r * cols + offset + p.cols]
                    .copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Splits a matrix into column blocks of the given widths (inverse of
    /// [`Matrix::hconcat`]).
    pub fn hsplit(&self, widths: &[usize]) -> Vec<Matrix> {
        assert_eq!(widths.iter().sum::<usize>(), self.cols, "hsplit width mismatch");
        let mut out = Vec::with_capacity(widths.len());
        let mut offset = 0;
        for &w in widths {
            let mut part = Matrix::zeros(self.rows, w);
            for r in 0..self.rows {
                part.row_mut(r)
                    .copy_from_slice(&self.row(r)[offset..offset + w]);
            }
            out.push(part);
            offset += w;
        }
        out
    }

    /// Consumes the matrix, returning its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let id = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        let got = a.matmul_tn(&b);
        // aᵀ is 2x3
        let at = m(2, 3, &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        assert_eq!(got, at.matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &[1.0, 0.0, 2.0, 0.5, 1.5, -1.0, 2.0, 2.0, 2.0, -3.0, 1.0, 0.0]);
        let got = a.matmul_nt(&b);
        let bt = m(3, 4, &[1.0, 0.5, 2.0, -3.0, 0.0, 1.5, 2.0, 1.0, 2.0, -1.0, 2.0, 0.0]);
        assert_eq!(got, a.matmul(&bt));
    }

    #[test]
    fn matmul_slice_matches_matmul() {
        let a = m(2, 3, &[1.0, 2.0, 0.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        assert_eq!(a.matmul_slice(b.data(), 3, 2), a.matmul(&b));
    }

    #[test]
    fn matmul_nt_slice_matches_matmul_nt() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &[1.0, 0.0, 2.0, 0.5, 1.5, -1.0, 2.0, 2.0, 2.0, -3.0, 1.0, 0.0]);
        assert_eq!(a.matmul_nt_slice(b.data(), 4, 3), a.matmul_nt(&b));
    }

    #[test]
    fn add_row_vector_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_vector(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[5.0, 6.0]);
        let cat = Matrix::hconcat(&[&a, &b]);
        assert_eq!(cat.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(cat.row(1), &[3.0, 4.0, 6.0]);
        let parts = cat.hsplit(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn hadamard() {
        let mut a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[2.0, 0.5, -1.0]);
        a.hadamard_assign(&b);
        assert_eq!(a.data(), &[2.0, 1.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
