//! Scaled dot-product attention blocks for the Set Transformer comparison
//! (paper §2/§3.2: Set Transformer is the attention-based alternative to
//! DeepSets; the paper picks DeepSets for speed and size — the ablation
//! bench reproduces that trade-off).
//!
//! The blocks use an *explicit-cache* API: `forward` returns the cache the
//! matching `backward` consumes, so a model can interleave forward passes
//! over many sets before backpropagating them in any order.

use crate::init;
use crate::matrix::Matrix;
use crate::param::ParamBuf;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Row-wise softmax in place.
fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        debug_assert!(sum > 0.0 && cols > 0);
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Cache of one attention forward pass.
#[derive(Debug, Clone)]
pub struct AttnCache {
    q_in: Matrix,
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    a: Matrix,
}

/// Single-head scaled dot-product attention with square projections
/// (`d -> d`), sized for the small sets this workspace handles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attention {
    dim: usize,
    wq: ParamBuf,
    wk: ParamBuf,
    wv: ParamBuf,
}

impl Attention {
    /// Creates an attention block over `dim`-wide rows.
    pub fn new(rng: &mut StdRng, dim: usize) -> Self {
        Attention {
            dim,
            wq: ParamBuf::new(init::glorot_uniform(rng, dim, dim)),
            wk: ParamBuf::new(init::glorot_uniform(rng, dim, dim)),
            wv: ParamBuf::new(init::glorot_uniform(rng, dim, dim)),
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn weight(&self, p: &ParamBuf) -> Matrix {
        Matrix::from_vec(self.dim, self.dim, p.value.clone())
    }

    /// `Attn(q_in, x) = softmax(q kᵀ / √d) v` with `q = q_in·Wq`,
    /// `k = x·Wk`, `v = x·Wv`. Returns `[m x d]` plus the backward cache.
    pub fn forward(&self, q_in: &Matrix, x: &Matrix) -> (Matrix, AttnCache) {
        assert_eq!(q_in.cols(), self.dim, "query width mismatch");
        assert_eq!(x.cols(), self.dim, "key/value width mismatch");
        let q = q_in.matmul(&self.weight(&self.wq));
        let k = x.matmul(&self.weight(&self.wk));
        let v = x.matmul(&self.weight(&self.wv));
        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut scores = q.matmul_nt(&k);
        for s in scores.data_mut() {
            *s *= scale;
        }
        softmax_rows(&mut scores);
        let out = scores.matmul(&v);
        (
            out,
            AttnCache { q_in: q_in.clone(), x: x.clone(), q, k, v, a: scores },
        )
    }

    /// Backward pass: returns `(dL/d q_in, dL/d x)` and accumulates the
    /// projection-weight gradients.
    pub fn backward(&mut self, cache: &AttnCache, grad_out: &Matrix) -> (Matrix, Matrix) {
        let scale = 1.0 / (self.dim as f32).sqrt();
        // out = A·v
        let grad_a = grad_out.matmul_nt(&cache.v);
        let grad_v = cache.a.matmul_tn(grad_out);
        // Softmax backward per row: ds = a ⊙ (da - Σ_j da_j a_j).
        let mut grad_scores = grad_a.clone();
        for r in 0..grad_scores.rows() {
            let a_row = cache.a.row(r);
            let dot: f32 =
                grad_a.row(r).iter().zip(a_row.iter()).map(|(&g, &a)| g * a).sum();
            for (gs, &a) in grad_scores.row_mut(r).iter_mut().zip(a_row.iter()) {
                *gs = a * (*gs - dot);
            }
        }
        for gs in grad_scores.data_mut() {
            *gs *= scale;
        }
        // scores = q·kᵀ (pre-scale)
        let grad_q = grad_scores.matmul(&cache.k);
        let grad_k = grad_scores.matmul_tn(&cache.q);
        // Projections.
        let add = |buf: &mut ParamBuf, g: &Matrix| {
            for (dst, &src) in buf.grad.iter_mut().zip(g.data().iter()) {
                *dst += src;
            }
        };
        add(&mut self.wq, &cache.q_in.matmul_tn(&grad_q));
        add(&mut self.wk, &cache.x.matmul_tn(&grad_k));
        add(&mut self.wv, &cache.x.matmul_tn(&grad_v));
        let grad_q_in = grad_q.matmul_nt(&self.weight(&self.wq));
        let grad_x_k = grad_k.matmul_nt(&self.weight(&self.wk));
        let grad_x_v = grad_v.matmul_nt(&self.weight(&self.wv));
        let mut grad_x = grad_x_k;
        for (a, &b) in grad_x.data_mut().iter_mut().zip(grad_x_v.data().iter()) {
            *a += b;
        }
        (grad_q_in, grad_x)
    }

    /// Parameter buffers.
    pub fn params_mut(&mut self) -> [&mut ParamBuf; 3] {
        [&mut self.wq, &mut self.wk, &mut self.wv]
    }

    /// Immutable parameter buffers.
    pub fn params(&self) -> [&ParamBuf; 3] {
        [&self.wq, &self.wk, &self.wv]
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        3 * self.dim * self.dim
    }

    /// Zeroes gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.wq.zero_grad();
        self.wk.zero_grad();
        self.wv.zero_grad();
    }
}

/// Cache of one SAB forward pass.
#[derive(Debug, Clone)]
pub struct SabCache {
    attn: AttnCache,
    h: Matrix,
    ff_pre: Matrix,
}

/// Set Attention Block: self-attention with residuals and a row-wise
/// feed-forward, `out = H + ReLU(H·W + b)` where `H = x + Attn(x, x)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sab {
    attn: Attention,
    ff_w: ParamBuf,
    ff_b: ParamBuf,
    dim: usize,
}

impl Sab {
    /// Creates a SAB over `dim`-wide rows.
    pub fn new(rng: &mut StdRng, dim: usize) -> Self {
        Sab {
            attn: Attention::new(rng, dim),
            ff_w: ParamBuf::new(init::he_uniform(rng, dim, dim)),
            ff_b: ParamBuf::new(vec![0.0; dim]),
            dim,
        }
    }

    /// Forward over one set `[n x d] -> [n x d]`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, SabCache) {
        let (a, attn_cache) = self.attn.forward(x, x);
        let mut h = x.clone();
        for (hv, &av) in h.data_mut().iter_mut().zip(a.data().iter()) {
            *hv += av;
        }
        let w = Matrix::from_vec(self.dim, self.dim, self.ff_w.value.clone());
        let mut ff_pre = h.matmul(&w);
        ff_pre.add_row_vector(&self.ff_b.value);
        let mut out = h.clone();
        for (o, &p) in out.data_mut().iter_mut().zip(ff_pre.data().iter()) {
            *o += p.max(0.0);
        }
        (out, SabCache { attn: attn_cache, h, ff_pre })
    }

    /// Backward: returns `dL/dx`.
    pub fn backward(&mut self, cache: &SabCache, grad_out: &Matrix) -> Matrix {
        // out = h + relu(ff_pre); ff_pre = h·W + b.
        let mut grad_ff = grad_out.clone();
        for (g, &p) in grad_ff.data_mut().iter_mut().zip(cache.ff_pre.data().iter()) {
            if p <= 0.0 {
                *g = 0.0;
            }
        }
        let grad_w = cache.h.matmul_tn(&grad_ff);
        for (dst, &src) in self.ff_w.grad.iter_mut().zip(grad_w.data().iter()) {
            *dst += src;
        }
        for (dst, src) in self.ff_b.grad.iter_mut().zip(grad_ff.col_sums()) {
            *dst += src;
        }
        let w = Matrix::from_vec(self.dim, self.dim, self.ff_w.value.clone());
        let mut grad_h = grad_ff.matmul_nt(&w);
        for (g, &go) in grad_h.data_mut().iter_mut().zip(grad_out.data().iter()) {
            *g += go; // residual path
        }
        // h = x + attn(x, x)
        let (grad_q_in, grad_x_kv) = self.attn.backward(&cache.attn, &grad_h);
        let mut grad_x = grad_h;
        for ((g, &a), &b) in grad_x
            .data_mut()
            .iter_mut()
            .zip(grad_q_in.data().iter())
            .zip(grad_x_kv.data().iter())
        {
            *g += a + b;
        }
        grad_x
    }

    /// Parameter buffers.
    pub fn params_mut(&mut self) -> Vec<&mut ParamBuf> {
        let mut out: Vec<&mut ParamBuf> = self.attn.params_mut().into_iter().collect();
        out.push(&mut self.ff_w);
        out.push(&mut self.ff_b);
        out
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.attn.num_params() + self.ff_w.len() + self.ff_b.len()
    }

    /// Zeroes gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.attn.zero_grad();
        self.ff_w.zero_grad();
        self.ff_b.zero_grad();
    }
}

/// Cache of one PMA forward pass.
#[derive(Debug, Clone)]
pub struct PmaCache {
    attn: AttnCache,
}

/// Pooling by Multihead Attention with a single learned seed vector:
/// `PMA(x) = Attn(seed, x)` — the Set Transformer's decoder pooling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PmaPool {
    seed: ParamBuf,
    attn: Attention,
    dim: usize,
}

impl PmaPool {
    /// Creates a PMA pooling block.
    pub fn new(rng: &mut StdRng, dim: usize) -> Self {
        PmaPool {
            seed: ParamBuf::new(init::glorot_uniform(rng, 1, dim)),
            attn: Attention::new(rng, dim),
            dim,
        }
    }

    /// Pools a set `[n x d] -> [1 x d]`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, PmaCache) {
        let seed = Matrix::from_vec(1, self.dim, self.seed.value.clone());
        let (out, attn) = self.attn.forward(&seed, x);
        (out, PmaCache { attn })
    }

    /// Backward: returns `dL/dx` and accumulates seed/attention gradients.
    pub fn backward(&mut self, cache: &PmaCache, grad_out: &Matrix) -> Matrix {
        let (grad_seed, grad_x) = self.attn.backward(&cache.attn, grad_out);
        for (dst, &src) in self.seed.grad.iter_mut().zip(grad_seed.data().iter()) {
            *dst += src;
        }
        grad_x
    }

    /// Parameter buffers.
    pub fn params_mut(&mut self) -> Vec<&mut ParamBuf> {
        let mut out: Vec<&mut ParamBuf> = self.attn.params_mut().into_iter().collect();
        out.push(&mut self.seed);
        out
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.attn.num_params() + self.seed.len()
    }

    /// Zeroes gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.attn.zero_grad();
        self.seed.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn softmax_rows_normalize() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        softmax_rows(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(m.row(r).iter().all(|&v| v > 0.0));
        }
        // Monotone in the logits.
        assert!(m.get(0, 2) > m.get(0, 1));
    }

    #[test]
    fn attention_shapes_and_rows_are_convex_combos() {
        let mut rng = StdRng::seed_from_u64(3);
        let attn = Attention::new(&mut rng, 4);
        let x = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.1).collect());
        let q = Matrix::from_vec(2, 4, vec![0.5; 8]);
        let (out, _) = attn.forward(&q, &x);
        assert_eq!((out.rows(), out.cols()), (2, 4));
    }

    fn sum_all(attn: &Attention, q: &Matrix, x: &Matrix) -> f32 {
        attn.forward(q, x).0.data().iter().sum()
    }

    #[test]
    fn attention_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut attn = Attention::new(&mut rng, 3);
        attn.zero_grad();
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| ((i * 7) % 5) as f32 * 0.2 - 0.4).collect());
        let q = Matrix::from_vec(2, 3, vec![0.3, -0.1, 0.6, 0.0, 0.4, -0.5]);
        let (out, cache) = attn.forward(&q, &x);
        let ones = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        let (gq, gx) = attn.backward(&cache, &ones);

        let eps = 1e-3f32;
        // Weight gradient (Wk, index 4).
        let orig = attn.params()[1].value[4];
        attn.params_mut()[1].value[4] = orig + eps;
        let plus = sum_all(&attn, &q, &x);
        attn.params_mut()[1].value[4] = orig - eps;
        let minus = sum_all(&attn, &q, &x);
        attn.params_mut()[1].value[4] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        let analytic = attn.params()[1].grad[4];
        assert!(
            (numeric - analytic).abs() < 5e-2 * (1.0 + numeric.abs()),
            "Wk: numeric {numeric} vs analytic {analytic}"
        );
        // Input gradients.
        let mut x2 = x.clone();
        x2.data_mut()[5] += eps;
        let plus = sum_all(&attn, &q, &x2);
        x2.data_mut()[5] -= 2.0 * eps;
        let minus = sum_all(&attn, &q, &x2);
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (numeric - gx.data()[5]).abs() < 5e-2 * (1.0 + numeric.abs()),
            "x grad: numeric {numeric} vs analytic {}",
            gx.data()[5]
        );
        let mut q2 = q.clone();
        q2.data_mut()[2] += eps;
        let plus = sum_all(&attn, &q2, &x);
        q2.data_mut()[2] -= 2.0 * eps;
        let minus = sum_all(&attn, &q2, &x);
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (numeric - gq.data()[2]).abs() < 5e-2 * (1.0 + numeric.abs()),
            "q grad: numeric {numeric} vs analytic {}",
            gq.data()[2]
        );
    }

    #[test]
    fn sab_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut sab = Sab::new(&mut rng, 3);
        sab.zero_grad();
        let x = Matrix::from_vec(3, 3, vec![0.2, -0.4, 0.6, 0.1, 0.5, -0.3, -0.2, 0.0, 0.4]);
        let (out, cache) = sab.forward(&x);
        let ones = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; 9]);
        let gx = sab.backward(&cache, &ones);

        let eps = 1e-3;
        let mut x2 = x.clone();
        x2.data_mut()[4] += eps;
        let plus: f32 = sab.forward(&x2).0.data().iter().sum();
        x2.data_mut()[4] -= 2.0 * eps;
        let minus: f32 = sab.forward(&x2).0.data().iter().sum();
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (numeric - gx.data()[4]).abs() < 6e-2 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {}",
            gx.data()[4]
        );
    }

    #[test]
    fn pma_pools_to_single_row_and_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut pma = PmaPool::new(&mut rng, 4);
        pma.zero_grad();
        let x = Matrix::from_vec(5, 4, (0..20).map(|i| (i % 3) as f32 * 0.3 - 0.2).collect());
        let (out, cache) = pma.forward(&x);
        assert_eq!((out.rows(), out.cols()), (1, 4));
        let gx = pma.backward(&cache, &Matrix::from_vec(1, 4, vec![1.0; 4]));
        assert_eq!((gx.rows(), gx.cols()), (5, 4));
        // Seed must receive gradient.
        let seed_grad_norm: f32 = pma.params_mut().last().unwrap().grad.iter().map(|g| g * g).sum();
        assert!(seed_grad_norm > 0.0);
    }

    #[test]
    fn pma_is_permutation_invariant() {
        let mut rng = StdRng::seed_from_u64(41);
        let pma = PmaPool::new(&mut rng, 3);
        let x = Matrix::from_vec(3, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]);
        let x_perm =
            Matrix::from_vec(3, 3, vec![0.7, 0.8, 0.9, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let (a, _) = pma.forward(&x);
        let (b, _) = pma.forward(&x_perm);
        for (va, vb) in a.data().iter().zip(b.data().iter()) {
            assert!((va - vb).abs() < 1e-5, "{va} vs {vb}");
        }
    }
}
