//! LSTM cell — a Figure 7 baseline for the digit-sum experiment.
//!
//! Processes one sequence at a time (batch 1) and returns the final hidden
//! state; backpropagation-through-time consumes only `dL/dh_T`, which is all
//! the set-sum regression head needs.

use crate::activation::sigmoid;
use crate::init;
use crate::matrix::Matrix;
use crate::param::ParamBuf;
use crate::rnn_util::{matvec_acc, matvec_backward};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Cached per-step state for BPTT.
#[derive(Debug, Clone, Default)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
}

/// A single-layer LSTM. Gate order in the fused weight matrices: `i, f, g, o`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    in_dim: usize,
    hidden: usize,
    /// `[in x 4h]` input weights.
    w: ParamBuf,
    /// `[h x 4h]` recurrent weights.
    u: ParamBuf,
    /// `[4h]` bias (forget-gate slice initialized to 1.0).
    b: ParamBuf,
    #[serde(skip)]
    cache: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM with Glorot-initialized weights and forget bias 1.
    pub fn new(rng: &mut StdRng, in_dim: usize, hidden: usize) -> Self {
        let mut b = vec![0.0; 4 * hidden];
        // Standard trick: start with an open forget gate.
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        Lstm {
            in_dim,
            hidden,
            w: ParamBuf::new(init::glorot_uniform(rng, in_dim, 4 * hidden)),
            u: ParamBuf::new(init::glorot_uniform(rng, hidden, 4 * hidden)),
            b: ParamBuf::new(b),
            cache: Vec::new(),
        }
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the sequence `[T x in]` and returns the final hidden state
    /// `[1 x h]`, caching every step for [`Lstm::backward`].
    pub fn forward(&mut self, seq: &Matrix) -> Matrix {
        let mut cache = Vec::with_capacity(seq.rows());
        let h = self.run(seq, Some(&mut cache));
        self.cache = cache;
        Matrix::from_vec(1, self.hidden, h)
    }

    /// Inference-only forward pass.
    pub fn predict(&self, seq: &Matrix) -> Matrix {
        let h = self.run(seq, None);
        Matrix::from_vec(1, self.hidden, h)
    }

    fn run(&self, seq: &Matrix, mut cache: Option<&mut Vec<StepCache>>) -> Vec<f32> {
        assert_eq!(seq.cols(), self.in_dim, "lstm input width mismatch");
        let hdim = self.hidden;
        let mut h = vec![0.0f32; hdim];
        let mut c = vec![0.0f32; hdim];
        for t in 0..seq.rows() {
            let x = seq.row(t);
            let mut gates = self.b.value.clone();
            matvec_acc(&self.w.value, x, &mut gates);
            matvec_acc(&self.u.value, &h, &mut gates);
            let (mut i, mut f, mut g, mut o) =
                (vec![0.0; hdim], vec![0.0; hdim], vec![0.0; hdim], vec![0.0; hdim]);
            for k in 0..hdim {
                i[k] = sigmoid(gates[k]);
                f[k] = sigmoid(gates[hdim + k]);
                g[k] = gates[2 * hdim + k].tanh();
                o[k] = sigmoid(gates[3 * hdim + k]);
            }
            let c_prev = c.clone();
            for k in 0..hdim {
                c[k] = f[k] * c_prev[k] + i[k] * g[k];
            }
            let h_prev = h.clone();
            for k in 0..hdim {
                h[k] = o[k] * c[k].tanh();
            }
            if let Some(cache) = cache.as_deref_mut() {
                cache.push(StepCache {
                    x: x.to_vec(),
                    h_prev,
                    c_prev,
                    i: i.clone(),
                    f: f.clone(),
                    g: g.clone(),
                    o: o.clone(),
                    c: c.clone(),
                });
            }
        }
        h
    }

    /// BPTT from the final-hidden-state gradient `[1 x h]`; returns
    /// `dL/dX` as `[T x in]` and accumulates weight gradients.
    pub fn backward(&mut self, grad_h_final: &Matrix) -> Matrix {
        assert!(!self.cache.is_empty(), "backward before forward");
        assert_eq!(grad_h_final.cols(), self.hidden);
        let hdim = self.hidden;
        let steps = self.cache.len();
        let mut grad_x = Matrix::zeros(steps, self.in_dim);
        let mut dh = grad_h_final.row(0).to_vec();
        let mut dc = vec![0.0f32; hdim];

        let cache = std::mem::take(&mut self.cache);
        for (t, s) in cache.iter().enumerate().rev() {
            let mut dgates = vec![0.0f32; 4 * hdim];
            for k in 0..hdim {
                let tc = s.c[k].tanh();
                let do_ = dh[k] * tc;
                dc[k] += dh[k] * s.o[k] * (1.0 - tc * tc);
                let di = dc[k] * s.g[k];
                let df = dc[k] * s.c_prev[k];
                let dg = dc[k] * s.i[k];
                dgates[k] = di * s.i[k] * (1.0 - s.i[k]);
                dgates[hdim + k] = df * s.f[k] * (1.0 - s.f[k]);
                dgates[2 * hdim + k] = dg * (1.0 - s.g[k] * s.g[k]);
                dgates[3 * hdim + k] = do_ * s.o[k] * (1.0 - s.o[k]);
            }
            // Propagate cell state to t-1.
            for (dcv, &fv) in dc.iter_mut().zip(s.f.iter()) {
                *dcv *= fv;
            }
            // Bias gradient.
            for (bg, &d) in self.b.grad.iter_mut().zip(dgates.iter()) {
                *bg += d;
            }
            // Input path.
            let mut dx = vec![0.0f32; self.in_dim];
            matvec_backward(&self.w.value, &mut self.w.grad, &s.x, &mut dx, &dgates);
            grad_x.row_mut(t).copy_from_slice(&dx);
            // Recurrent path.
            let mut dh_prev = vec![0.0f32; hdim];
            matvec_backward(&self.u.value, &mut self.u.grad, &s.h_prev, &mut dh_prev, &dgates);
            dh = dh_prev;
        }
        grad_x
    }

    /// Parameter buffers for the optimizer.
    pub fn params_mut(&mut self) -> [&mut ParamBuf; 3] {
        [&mut self.w, &mut self.u, &mut self.b]
    }

    /// Immutable parameter buffers.
    pub fn params(&self) -> [&ParamBuf; 3] {
        [&self.w, &self.u, &self.b]
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.u.len() + self.b.len()
    }

    /// Zeroes gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.u.zero_grad();
        self.b.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lstm = Lstm::new(&mut rng, 3, 5);
        let seq = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.1).collect());
        let h1 = lstm.forward(&seq);
        let h2 = lstm.predict(&seq);
        assert_eq!((h1.rows(), h1.cols()), (1, 5));
        assert_eq!(h1, h2);
    }

    #[test]
    fn gradient_check_input_weight() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut lstm = Lstm::new(&mut rng, 2, 3);
        lstm.zero_grad();
        let seq = Matrix::from_vec(3, 2, vec![0.5, -0.3, 0.2, 0.8, -0.6, 0.1]);
        lstm.forward(&seq);
        // Loss = sum(h_T)
        lstm.backward(&Matrix::from_vec(1, 3, vec![1.0; 3]));
        let analytic = lstm.params()[0].grad[1];

        let eps = 1e-3;
        let orig = lstm.params()[0].value[1];
        lstm.params_mut()[0].value[1] = orig + eps;
        let plus: f32 = lstm.predict(&seq).data().iter().sum();
        lstm.params_mut()[0].value[1] = orig - eps;
        let minus: f32 = lstm.predict(&seq).data().iter().sum();
        lstm.params_mut()[0].value[1] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 5e-2 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn gradient_check_recurrent_weight() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut lstm = Lstm::new(&mut rng, 2, 2);
        lstm.zero_grad();
        let seq = Matrix::from_vec(4, 2, vec![0.3, 0.9, -0.2, 0.4, 0.7, -0.5, 0.0, 0.6]);
        lstm.forward(&seq);
        lstm.backward(&Matrix::from_vec(1, 2, vec![1.0; 2]));
        let analytic = lstm.params()[1].grad[0];

        let eps = 1e-3;
        let orig = lstm.params()[1].value[0];
        lstm.params_mut()[1].value[0] = orig + eps;
        let plus: f32 = lstm.predict(&seq).data().iter().sum();
        lstm.params_mut()[1].value[0] = orig - eps;
        let minus: f32 = lstm.predict(&seq).data().iter().sum();
        lstm.params_mut()[1].value[0] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 5e-2 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn grad_x_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut lstm = Lstm::new(&mut rng, 2, 3);
        lstm.zero_grad();
        let seq = Matrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]);
        lstm.forward(&seq);
        let gx = lstm.backward(&Matrix::from_vec(1, 3, vec![1.0; 3]));

        let eps = 1e-3;
        let mut bumped = seq.clone();
        bumped.data_mut()[2] += eps;
        let plus: f32 = lstm.predict(&bumped).data().iter().sum();
        bumped.data_mut()[2] -= 2.0 * eps;
        let minus: f32 = lstm.predict(&bumped).data().iter().sum();
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((numeric - gx.data()[2]).abs() < 5e-2 * (1.0 + numeric.abs()));
    }
}
