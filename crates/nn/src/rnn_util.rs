//! Small vector/matrix helpers shared by the recurrent cells.
//!
//! The recurrent baselines run with batch size 1 over short sequences, so the
//! cells operate on plain `Vec<f32>` states with `[in x out]` row-major
//! weight matrices.

/// `out[j] += Σ_i x[i] * w[i*out_dim + j]` — applies `xᵀW` into `out`.
pub fn matvec_acc(w: &[f32], x: &[f32], out: &mut [f32]) {
    let out_dim = out.len();
    debug_assert_eq!(w.len(), x.len() * out_dim);
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = &w[i * out_dim..(i + 1) * out_dim];
        for (o, &wv) in out.iter_mut().zip(row.iter()) {
            *o += xi * wv;
        }
    }
}

/// Accumulates `dW[i][j] += x[i] * dout[j]` and `dx[i] += Σ_j w[i][j] * dout[j]`.
pub fn matvec_backward(
    w: &[f32],
    grad_w: &mut [f32],
    x: &[f32],
    grad_x: &mut [f32],
    dout: &[f32],
) {
    let out_dim = dout.len();
    debug_assert_eq!(w.len(), x.len() * out_dim);
    for i in 0..x.len() {
        let row = &w[i * out_dim..(i + 1) * out_dim];
        let grow = &mut grad_w[i * out_dim..(i + 1) * out_dim];
        let xi = x[i];
        let mut acc = 0.0;
        for j in 0..out_dim {
            grow[j] += xi * dout[j];
            acc += row[j] * dout[j];
        }
        grad_x[i] += acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_acc_basic() {
        // W is 2x3: [[1,2,3],[4,5,6]]
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, 2.0];
        let mut out = [0.0; 3];
        matvec_acc(&w, &x, &mut out);
        assert_eq!(out, [9.0, 12.0, 15.0]);
    }

    #[test]
    fn matvec_backward_matches_finite_difference() {
        let w = [0.5, -0.2, 0.1, 0.3, 0.7, -0.4];
        let x = [0.9f32, -1.1];
        let dout = [1.0f32, 1.0, 1.0]; // loss = sum(out)
        let mut grad_w = [0.0; 6];
        let mut grad_x = [0.0; 2];
        matvec_backward(&w, &mut grad_w, &x, &mut grad_x, &dout);

        let eps = 1e-3;
        let f = |w: &[f32], x: &[f32]| {
            let mut out = [0.0; 3];
            matvec_acc(w, x, &mut out);
            out.iter().sum::<f32>()
        };
        let mut w2 = w;
        w2[4] += eps;
        let plus = f(&w2, &x);
        w2[4] -= 2.0 * eps;
        let minus = f(&w2, &x);
        assert!((grad_w[4] - (plus - minus) / (2.0 * eps)).abs() < 1e-2);

        let mut x2 = x;
        x2[0] += eps;
        let plus = f(&w, &x2);
        x2[0] -= 2.0 * eps;
        let minus = f(&w, &x2);
        assert!((grad_x[0] - (plus - minus) / (2.0 * eps)).abs() < 1e-2);
    }
}
