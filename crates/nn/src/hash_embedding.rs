//! Hash embeddings — the "hashing trick" alternative to the paper's
//! quotient/remainder compression (§5).
//!
//! Instead of decomposing ids arithmetically, each id is mapped by `k`
//! independent hash functions into a small shared bucket table and its
//! representation is the sum of the hit rows. Collisions blur rare elements
//! together (lossy), whereas Algorithm 1 is lossless — the
//! `abl_hash_encoder` bench quantifies that trade-off at equal parameter
//! budgets.

use crate::matrix::Matrix;
use crate::param::ParamBuf;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The bucket row hit by one seeded probe for element `id` — the exact hash
/// used by [`HashEmbedding`], exposed so frozen inference tables can
/// reproduce the probe sequence without holding the layer itself.
#[inline]
pub fn hash_bucket(id: u32, seed: u64, buckets: usize) -> usize {
    (splitmix64(id as u64 ^ seed) % buckets as u64) as usize
}

/// SplitMix64 avalanche (kept local to avoid a cross-crate dependency).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A `buckets x dim` table addressed through `k` seeded hash functions;
/// an element's vector is the sum of its `k` bucket rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashEmbedding {
    buckets: usize,
    dim: usize,
    seeds: Vec<u64>,
    table: ParamBuf,
    #[serde(skip)]
    cached_ids: Option<Vec<u32>>,
}

impl HashEmbedding {
    /// Creates a hashed table with `num_hashes` probe functions.
    ///
    /// # Panics
    /// If any dimension is zero.
    pub fn new(rng: &mut StdRng, buckets: usize, dim: usize, num_hashes: usize) -> Self {
        assert!(buckets > 0 && dim > 0 && num_hashes > 0, "degenerate hash embedding");
        let seeds = (0..num_hashes).map(|_| rng.gen()).collect();
        HashEmbedding {
            buckets,
            dim,
            seeds,
            table: ParamBuf::new(crate::init::embedding_uniform(rng, buckets, dim)),
            cached_ids: None,
        }
    }

    /// Output feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bucket count.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Number of hash probes per element.
    pub fn num_hashes(&self) -> usize {
        self.seeds.len()
    }

    /// The bucket row hit by hash probe `probe` for element `id`. Public so
    /// inference kernels that re-lay-out the table can reproduce the exact
    /// probe sequence.
    #[inline]
    pub fn bucket(&self, id: u32, probe: usize) -> usize {
        hash_bucket(id, self.seeds[probe], self.buckets)
    }

    /// The probe seeds, in probe order.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Looks up a flat id batch: `[N] -> [N x dim]`, caching for backward.
    pub fn forward(&mut self, ids: &[u32]) -> Matrix {
        let out = self.predict(ids);
        self.cached_ids = Some(ids.to_vec());
        out
    }

    /// Inference-only lookup.
    pub fn predict(&self, ids: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            let row = out.row_mut(r);
            for probe in 0..self.seeds.len() {
                let b = self.bucket(id, probe);
                let src = &self.table.value[b * self.dim..(b + 1) * self.dim];
                for (o, &v) in row.iter_mut().zip(src.iter()) {
                    *o += v;
                }
            }
        }
        out
    }

    /// Scatter-adds gradients into every probed bucket row.
    pub fn backward(&mut self, grad_output: &Matrix) {
        let ids = self.cached_ids.take().expect("backward before forward");
        self.accumulate_grad(&ids, grad_output);
    }

    /// Cache-free gradient accumulation.
    pub fn accumulate_grad(&mut self, ids: &[u32], grad_output: &Matrix) {
        assert_eq!(grad_output.rows(), ids.len());
        assert_eq!(grad_output.cols(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            for probe in 0..self.seeds.len() {
                let b = self.bucket(id, probe);
                let dst = &mut self.table.grad[b * self.dim..(b + 1) * self.dim];
                for (g, &d) in dst.iter_mut().zip(grad_output.row(r).iter()) {
                    *g += d;
                }
            }
        }
    }

    /// Parameter buffers.
    pub fn params_mut(&mut self) -> [&mut ParamBuf; 1] {
        [&mut self.table]
    }

    /// Immutable parameter buffers.
    pub fn params(&self) -> [&ParamBuf; 1] {
        [&self.table]
    }

    /// Scalar parameter count (`buckets * dim`).
    pub fn num_params(&self) -> usize {
        self.table.len()
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.table.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_lookup_independent_of_vocab_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let he = HashEmbedding::new(&mut rng, 32, 4, 2);
        // Ids far beyond the bucket count still resolve.
        let a = he.predict(&[1_000_000]);
        let b = he.predict(&[1_000_000]);
        assert_eq!(a, b);
        assert_eq!((a.rows(), a.cols()), (1, 4));
    }

    #[test]
    fn different_ids_usually_differ() {
        let mut rng = StdRng::seed_from_u64(2);
        let he = HashEmbedding::new(&mut rng, 64, 4, 2);
        let mut distinct = 0;
        for i in 0..50u32 {
            if he.predict(&[i]) != he.predict(&[i + 1]) {
                distinct += 1;
            }
        }
        assert!(distinct > 45, "only {distinct} of 50 adjacent pairs distinct");
    }

    #[test]
    fn backward_accumulates_into_probed_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut he = HashEmbedding::new(&mut rng, 16, 2, 3);
        he.zero_grad();
        he.forward(&[7]);
        let grad = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        he.backward(&grad);
        // Total accumulated gradient mass = num_hashes * per-row grad
        // (buckets may coincide, but sums are preserved).
        let sum: f32 = he.params()[0].grad.iter().sum();
        assert!((sum - 3.0 * 3.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn gradient_check_through_the_table() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut he = HashEmbedding::new(&mut rng, 8, 3, 2);
        he.zero_grad();
        he.forward(&[5, 9]);
        let grad = Matrix::from_vec(2, 3, vec![1.0; 6]);
        he.backward(&grad);
        let eps = 1e-3;
        // Pick a parameter with nonzero gradient and check numerically.
        let idx = he.params()[0]
            .grad
            .iter()
            .position(|&g| g != 0.0)
            .expect("some bucket touched");
        let analytic = he.params()[0].grad[idx];
        let orig = he.params()[0].value[idx];
        he.params_mut()[0].value[idx] = orig + eps;
        let plus: f32 = he.predict(&[5, 9]).data().iter().sum();
        he.params_mut()[0].value[idx] = orig - eps;
        let minus: f32 = he.predict(&[5, 9]).data().iter().sum();
        he.params_mut()[0].value[idx] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((numeric - analytic).abs() < 1e-2, "{numeric} vs {analytic}");
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let he = HashEmbedding::new(&mut rng, 16, 2, 2);
        let json = serde_json::to_string(&he).unwrap();
        let back: HashEmbedding = serde_json::from_str(&json).unwrap();
        assert_eq!(he.predict(&[3, 12]), back.predict(&[3, 12]));
    }
}
