//! GRU cell — a Figure 7 baseline for the digit-sum experiment.
//!
//! Uses the original Cho et al. formulation where the candidate state sees
//! `r ⊙ h_prev`:
//!
//! ```text
//! z = σ(x·W_z + h·U_z + b_z)
//! r = σ(x·W_r + h·U_r + b_r)
//! n = tanh(x·W_n + (r ⊙ h)·U_n + b_n)
//! h' = (1 - z) ⊙ n + z ⊙ h
//! ```

use crate::activation::sigmoid;
use crate::init;
use crate::matrix::Matrix;
use crate::param::ParamBuf;
use crate::rnn_util::{matvec_acc, matvec_backward};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Default)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    rh: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    n: Vec<f32>,
}

/// A single-layer GRU. Gate order in the fused matrices: `z, r, n`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gru {
    in_dim: usize,
    hidden: usize,
    /// `[in x 3h]` input weights.
    w: ParamBuf,
    /// `[h x 3h]` recurrent weights.
    u: ParamBuf,
    /// `[3h]` bias.
    b: ParamBuf,
    #[serde(skip)]
    cache: Vec<StepCache>,
}

impl Gru {
    /// Creates a GRU with Glorot-initialized weights.
    pub fn new(rng: &mut StdRng, in_dim: usize, hidden: usize) -> Self {
        Gru {
            in_dim,
            hidden,
            w: ParamBuf::new(init::glorot_uniform(rng, in_dim, 3 * hidden)),
            u: ParamBuf::new(init::glorot_uniform(rng, hidden, 3 * hidden)),
            b: ParamBuf::new(vec![0.0; 3 * hidden]),
            cache: Vec::new(),
        }
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the sequence `[T x in]`, returning the final hidden state and
    /// caching steps for [`Gru::backward`].
    pub fn forward(&mut self, seq: &Matrix) -> Matrix {
        let mut cache = Vec::with_capacity(seq.rows());
        let h = self.run(seq, Some(&mut cache));
        self.cache = cache;
        Matrix::from_vec(1, self.hidden, h)
    }

    /// Inference-only forward pass.
    pub fn predict(&self, seq: &Matrix) -> Matrix {
        let h = self.run(seq, None);
        Matrix::from_vec(1, self.hidden, h)
    }

    fn run(&self, seq: &Matrix, mut cache: Option<&mut Vec<StepCache>>) -> Vec<f32> {
        assert_eq!(seq.cols(), self.in_dim, "gru input width mismatch");
        let hdim = self.hidden;
        let mut h = vec![0.0f32; hdim];
        for t in 0..seq.rows() {
            let x = seq.row(t);
            // z and r gates use h directly.
            let mut pre = self.b.value.clone();
            matvec_acc(&self.w.value, x, &mut pre);
            // Recurrent contribution: z,r slices use h; n slice uses r⊙h and
            // must wait until r is known. Accumulate U·h into a scratch and
            // use only its z/r slices.
            let mut uh = vec![0.0f32; 3 * hdim];
            matvec_acc(&self.u.value, &h, &mut uh);
            let mut z = vec![0.0; hdim];
            let mut r = vec![0.0; hdim];
            for k in 0..hdim {
                z[k] = sigmoid(pre[k] + uh[k]);
                r[k] = sigmoid(pre[hdim + k] + uh[hdim + k]);
            }
            // Candidate with reset-gated hidden state.
            let rh: Vec<f32> = r.iter().zip(h.iter()).map(|(&rk, &hk)| rk * hk).collect();
            let mut n_pre: Vec<f32> = pre[2 * hdim..3 * hdim].to_vec();
            let u_n = &self.u.value[..]; // full matrix; offset the column slice below
            // U is [h x 3h]; the n-columns are the last hdim of each row.
            for (i, &rhi) in rh.iter().enumerate() {
                if rhi == 0.0 {
                    continue;
                }
                let row = &u_n[i * 3 * hdim + 2 * hdim..i * 3 * hdim + 3 * hdim];
                for (o, &wv) in n_pre.iter_mut().zip(row.iter()) {
                    *o += rhi * wv;
                }
            }
            let n: Vec<f32> = n_pre.iter().map(|&v| v.tanh()).collect();
            let h_prev = h.clone();
            for k in 0..hdim {
                h[k] = (1.0 - z[k]) * n[k] + z[k] * h_prev[k];
            }
            if let Some(cache) = cache.as_deref_mut() {
                cache.push(StepCache {
                    x: x.to_vec(),
                    h_prev,
                    rh,
                    z: z.clone(),
                    r: r.clone(),
                    n: n.clone(),
                });
            }
        }
        h
    }

    /// BPTT from `dL/dh_T`; returns `dL/dX` and accumulates weight grads.
    // The index loops below walk several same-length gate vectors plus
    // strided weight slices at once; iterator zips would obscure the math.
    #[allow(clippy::needless_range_loop)]
    pub fn backward(&mut self, grad_h_final: &Matrix) -> Matrix {
        assert!(!self.cache.is_empty(), "backward before forward");
        assert_eq!(grad_h_final.cols(), self.hidden);
        let hdim = self.hidden;
        let steps = self.cache.len();
        let mut grad_x = Matrix::zeros(steps, self.in_dim);
        let mut dh = grad_h_final.row(0).to_vec();

        let cache = std::mem::take(&mut self.cache);
        for (t, s) in cache.iter().enumerate().rev() {
            let mut dz_pre = vec![0.0f32; hdim];
            let mut dn_pre = vec![0.0f32; hdim];
            let mut dh_prev = vec![0.0f32; hdim];
            for k in 0..hdim {
                let dz = dh[k] * (s.h_prev[k] - s.n[k]);
                dz_pre[k] = dz * s.z[k] * (1.0 - s.z[k]);
                let dn = dh[k] * (1.0 - s.z[k]);
                dn_pre[k] = dn * (1.0 - s.n[k] * s.n[k]);
                dh_prev[k] = dh[k] * s.z[k];
            }
            // n path: n_pre = x·W_n + rh·U_n + b_n.
            // d(rh) = dn_pre · U_nᵀ and dU_n += rhᵀ·dn_pre.
            let mut drh = vec![0.0f32; hdim];
            for i in 0..hdim {
                let row = &self.u.value[i * 3 * hdim + 2 * hdim..i * 3 * hdim + 3 * hdim];
                let grow = &mut self.u.grad[i * 3 * hdim + 2 * hdim..i * 3 * hdim + 3 * hdim];
                let mut acc = 0.0;
                for j in 0..hdim {
                    grow[j] += s.rh[i] * dn_pre[j];
                    acc += row[j] * dn_pre[j];
                }
                drh[i] = acc;
            }
            let mut dr_pre = vec![0.0f32; hdim];
            for k in 0..hdim {
                let dr = drh[k] * s.h_prev[k];
                dh_prev[k] += drh[k] * s.r[k];
                dr_pre[k] = dr * s.r[k] * (1.0 - s.r[k]);
            }
            // z, r recurrent paths (first 2h columns of U).
            for i in 0..hdim {
                let row = &self.u.value[i * 3 * hdim..i * 3 * hdim + 2 * hdim];
                let grow = &mut self.u.grad[i * 3 * hdim..i * 3 * hdim + 2 * hdim];
                let hp = s.h_prev[i];
                let mut acc = 0.0;
                for j in 0..hdim {
                    grow[j] += hp * dz_pre[j];
                    grow[hdim + j] += hp * dr_pre[j];
                    acc += row[j] * dz_pre[j] + row[hdim + j] * dr_pre[j];
                }
                dh_prev[i] += acc;
            }
            // Input path: fused gate gradient [dz_pre, dr_pre, dn_pre].
            let mut dgates = Vec::with_capacity(3 * hdim);
            dgates.extend_from_slice(&dz_pre);
            dgates.extend_from_slice(&dr_pre);
            dgates.extend_from_slice(&dn_pre);
            for (bg, &d) in self.b.grad.iter_mut().zip(dgates.iter()) {
                *bg += d;
            }
            let mut dx = vec![0.0f32; self.in_dim];
            matvec_backward(&self.w.value, &mut self.w.grad, &s.x, &mut dx, &dgates);
            grad_x.row_mut(t).copy_from_slice(&dx);
            dh = dh_prev;
        }
        grad_x
    }

    /// Parameter buffers for the optimizer.
    pub fn params_mut(&mut self) -> [&mut ParamBuf; 3] {
        [&mut self.w, &mut self.u, &mut self.b]
    }

    /// Immutable parameter buffers.
    pub fn params(&self) -> [&ParamBuf; 3] {
        [&self.w, &self.u, &self.b]
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.u.len() + self.b.len()
    }

    /// Zeroes gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.u.zero_grad();
        self.b.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut gru = Gru::new(&mut rng, 3, 4);
        let seq = Matrix::from_vec(5, 3, (0..15).map(|i| (i as f32) * 0.05 - 0.3).collect());
        let h1 = gru.forward(&seq);
        assert_eq!((h1.rows(), h1.cols()), (1, 4));
        assert_eq!(h1, gru.predict(&seq));
    }

    fn numeric_grad(gru: &mut Gru, seq: &Matrix, buf: usize, idx: usize) -> f32 {
        let eps = 1e-3;
        let orig = gru.params()[buf].value[idx];
        gru.params_mut()[buf].value[idx] = orig + eps;
        let plus: f32 = gru.predict(seq).data().iter().sum();
        gru.params_mut()[buf].value[idx] = orig - eps;
        let minus: f32 = gru.predict(seq).data().iter().sum();
        gru.params_mut()[buf].value[idx] = orig;
        (plus - minus) / (2.0 * eps)
    }

    #[test]
    fn gradient_check_all_weight_groups() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut gru = Gru::new(&mut rng, 2, 3);
        let seq = Matrix::from_vec(3, 2, vec![0.4, -0.2, 0.1, 0.9, -0.7, 0.3]);
        gru.zero_grad();
        gru.forward(&seq);
        gru.backward(&Matrix::from_vec(1, 3, vec![1.0; 3]));
        // One index from W (input), U (recurrent, incl. the n-slice), b.
        for (buf, idx) in [(0usize, 3usize), (1, 7), (1, 2 * 3 + 1), (2, 4)] {
            let analytic = gru.params()[buf].grad[idx];
            let numeric = numeric_grad(&mut gru, &seq, buf, idx);
            assert!(
                (numeric - analytic).abs() < 5e-2 * (1.0 + numeric.abs()),
                "buf {buf} idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn grad_x_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut gru = Gru::new(&mut rng, 2, 3);
        gru.zero_grad();
        let seq = Matrix::from_vec(2, 2, vec![0.2, -0.1, 0.5, 0.3]);
        gru.forward(&seq);
        let gx = gru.backward(&Matrix::from_vec(1, 3, vec![1.0; 3]));

        let eps = 1e-3;
        let mut bumped = seq.clone();
        bumped.data_mut()[1] += eps;
        let plus: f32 = gru.predict(&bumped).data().iter().sum();
        bumped.data_mut()[1] -= 2.0 * eps;
        let minus: f32 = gru.predict(&bumped).data().iter().sum();
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((numeric - gx.data()[1]).abs() < 5e-2 * (1.0 + numeric.abs()));
    }
}
