//! Fully connected layer with manual backprop.

use crate::activation::Activation;
use crate::init;
use crate::matrix::Matrix;
use crate::param::ParamBuf;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// `Y = act(X·W + b)` with `W: [in x out]`, `b: [out]`.
///
/// The layer caches its last input and output so [`Dense::backward`] can be
/// called immediately after [`Dense::forward`]. Gradients accumulate into the
/// owned [`ParamBuf`]s until the optimizer consumes them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    weight: ParamBuf,
    bias: ParamBuf,
    #[serde(skip)]
    cached_input: Option<Matrix>,
    #[serde(skip)]
    cached_output: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with activation-appropriate initialization
    /// (He for ReLU, Glorot otherwise).
    pub fn new(rng: &mut StdRng, in_dim: usize, out_dim: usize, activation: Activation) -> Self {
        let w = match activation {
            Activation::Relu => init::he_uniform(rng, in_dim, out_dim),
            _ => init::glorot_uniform(rng, in_dim, out_dim),
        };
        Dense {
            in_dim,
            out_dim,
            activation,
            weight: ParamBuf::new(w),
            bias: ParamBuf::new(vec![0.0; out_dim]),
            cached_input: None,
            cached_output: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass over a batch `[B x in] -> [B x out]`, caching state for
    /// the backward pass.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.in_dim, "dense input width mismatch");
        let mut out = input.matmul_slice(&self.weight.value, self.in_dim, self.out_dim);
        out.add_row_vector(&self.bias.value);
        self.activation.apply_slice(out.data_mut());
        self.cached_input = Some(input.clone());
        self.cached_output = Some(out.clone());
        out
    }

    /// Inference-only forward pass: no state is cached, `&self`, and the
    /// weight buffer is borrowed rather than cloned per call.
    pub fn predict(&self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.in_dim, "dense input width mismatch");
        let mut out = input.matmul_slice(&self.weight.value, self.in_dim, self.out_dim);
        out.add_row_vector(&self.bias.value);
        self.activation.apply_slice(out.data_mut());
        out
    }

    /// Backward pass. `grad_output` is `dL/dY` (post-activation); returns
    /// `dL/dX` and accumulates `dL/dW`, `dL/db`.
    ///
    /// # Panics
    /// If called without a preceding [`Dense::forward`].
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cached_input.take().expect("backward before forward");
        let output = self.cached_output.take().expect("backward before forward");
        assert_eq!(grad_output.cols(), self.out_dim);
        assert_eq!(grad_output.rows(), input.rows());

        // dZ = dY ⊙ act'(Z), with act' expressed via the cached output.
        let mut grad_z = grad_output.clone();
        for (gz, &y) in grad_z.data_mut().iter_mut().zip(output.data().iter()) {
            *gz *= self.activation.derivative_from_output(y);
        }

        // dW = Xᵀ·dZ
        let grad_w = input.matmul_tn(&grad_z);
        for (g, &d) in self.weight.grad.iter_mut().zip(grad_w.data().iter()) {
            *g += d;
        }
        // db = colsum(dZ)
        for (g, d) in self.bias.grad.iter_mut().zip(grad_z.col_sums()) {
            *g += d;
        }
        // dX = dZ·Wᵀ
        grad_z.matmul_nt_slice(&self.weight.value, self.in_dim, self.out_dim)
    }

    /// Mutable access to the layer's parameter buffers, optimizer-ordered.
    pub fn params_mut(&mut self) -> [&mut ParamBuf; 2] {
        [&mut self.weight, &mut self.bias]
    }

    /// Immutable access to the layer's parameter buffers.
    pub fn params(&self) -> [&ParamBuf; 2] {
        [&self.weight, &self.bias]
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Zeroes gradient accumulators (also restoring them post-deserialize).
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn finite_diff_check(activation: Activation) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(&mut rng, 3, 2, activation);
        layer.zero_grad();
        let input = Matrix::from_vec(2, 3, vec![0.3, -0.7, 1.1, 0.9, 0.2, -0.4]);
        // Loss = sum(Y); dL/dY = 1.
        let out = layer.forward(&input);
        let ones = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        let grad_in = layer.backward(&ones);

        let eps = 1e-3f32;
        // Check a handful of weight gradients numerically.
        for idx in [0usize, 2, 5] {
            let orig = layer.params()[0].value[idx];
            layer.params_mut()[0].value[idx] = orig + eps;
            let plus: f32 = layer.predict(&input).data().iter().sum();
            layer.params_mut()[0].value[idx] = orig - eps;
            let minus: f32 = layer.predict(&input).data().iter().sum();
            layer.params_mut()[0].value[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = layer.params()[0].grad[idx];
            assert!(
                (numeric - analytic).abs() < 5e-2 * (1.0 + numeric.abs()),
                "{activation:?} weight[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check one input gradient numerically.
        let mut bumped = input.clone();
        bumped.data_mut()[1] += eps;
        let plus: f32 = layer.predict(&bumped).data().iter().sum();
        bumped.data_mut()[1] -= 2.0 * eps;
        let minus: f32 = layer.predict(&bumped).data().iter().sum();
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (numeric - grad_in.data()[1]).abs() < 5e-2 * (1.0 + numeric.abs()),
            "{activation:?} input grad: numeric {numeric} vs analytic {}",
            grad_in.data()[1]
        );
    }

    #[test]
    fn gradients_match_finite_differences_identity() {
        finite_diff_check(Activation::Identity);
    }

    #[test]
    fn gradients_match_finite_differences_sigmoid() {
        finite_diff_check(Activation::Sigmoid);
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        finite_diff_check(Activation::Tanh);
    }

    #[test]
    fn forward_and_predict_agree() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Dense::new(&mut rng, 4, 3, Activation::Relu);
        let input = Matrix::from_vec(1, 4, vec![1.0, -2.0, 0.5, 0.0]);
        assert_eq!(layer.forward(&input), layer.predict(&input));
    }

    #[test]
    fn serde_roundtrip_preserves_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Dense::new(&mut rng, 2, 2, Activation::Sigmoid);
        let json = serde_json::to_string(&layer).unwrap();
        let mut back: Dense = serde_json::from_str(&json).unwrap();
        back.zero_grad();
        let input = Matrix::from_vec(1, 2, vec![0.1, 0.9]);
        assert_eq!(layer.predict(&input), back.predict(&input));
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(&mut rng, 2, 2, Activation::Identity);
        let g = Matrix::zeros(1, 2);
        let _ = layer.backward(&g);
    }
}
