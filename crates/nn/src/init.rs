//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::Rng;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The standard choice for the
/// sigmoid/tanh heads used throughout the paper's models.
pub fn glorot_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..fan_in * fan_out).map(|_| rng.gen_range(-a..a)).collect()
}

/// He uniform initialization, suited to ReLU hidden layers:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn he_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Vec<f32> {
    let a = (6.0 / fan_in as f32).sqrt();
    (0..fan_in * fan_out).map(|_| rng.gen_range(-a..a)).collect()
}

/// Small-uniform embedding initialization `U(-0.05, 0.05)`, matching the
/// Keras `RandomUniform` default used by the reference implementation.
pub fn embedding_uniform(rng: &mut StdRng, vocab: usize, dim: usize) -> Vec<f32> {
    (0..vocab * dim).map(|_| rng.gen_range(-0.05..0.05)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn glorot_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = glorot_uniform(&mut rng, 10, 20);
        let a = (6.0f32 / 30.0).sqrt();
        assert_eq!(w.len(), 200);
        assert!(w.iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn he_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = he_uniform(&mut rng, 6, 4);
        let a = 1.0f32;
        assert!(w.iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(glorot_uniform(&mut a, 3, 3), glorot_uniform(&mut b, 3, 3));
    }

    #[test]
    fn embedding_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = embedding_uniform(&mut rng, 5, 4);
        assert!(w.iter().all(|&x| (-0.05..0.05).contains(&x)));
    }
}
