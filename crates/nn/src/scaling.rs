//! Target scaling: log transform + min-max normalization (paper §4.1).
//!
//! Positions and cardinalities are log-transformed and scaled into `[0, 1]`
//! so a sigmoid output head can represent them. The scaler remembers the
//! observed log range for inversion and exposes the `span` the q-error loss
//! needs.

use serde::{Deserialize, Serialize};

/// Log + min-max scaler fitted on training targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogMinMaxScaler {
    min_log: f64,
    max_log: f64,
}

impl LogMinMaxScaler {
    /// Fits the scaler on raw (non-negative) target values.
    ///
    /// Values are shifted by `+1` before the log so zero targets (position 0,
    /// cardinality 0) stay finite.
    ///
    /// # Panics
    /// If `values` is empty or contains negatives.
    pub fn fit(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot fit scaler on empty targets");
        let mut min_log = f64::INFINITY;
        let mut max_log = f64::NEG_INFINITY;
        for &v in values {
            assert!(v >= 0.0, "scaler targets must be non-negative, got {v}");
            let l = (v + 1.0).ln();
            min_log = min_log.min(l);
            max_log = max_log.max(l);
        }
        LogMinMaxScaler { min_log, max_log }
    }

    /// Constructs a scaler from a known raw range `[min_value, max_value]`.
    pub fn from_range(min_value: f64, max_value: f64) -> Self {
        assert!(min_value >= 0.0 && max_value >= min_value, "invalid range");
        LogMinMaxScaler { min_log: (min_value + 1.0).ln(), max_log: (max_value + 1.0).ln() }
    }

    /// Scales a raw target into `[0, 1]` (clamped).
    pub fn scale(&self, value: f64) -> f32 {
        let l = (value + 1.0).ln();
        if self.span() == 0.0 {
            // Degenerate: all training targets identical.
            return 0.5;
        }
        (((l - self.min_log) / (self.max_log - self.min_log)).clamp(0.0, 1.0)) as f32
    }

    /// Inverts a scaled prediction back to the raw value domain.
    ///
    /// Non-finite predictions are propagated unchanged (as `f64`) instead of
    /// being clamped into range: a NaN coming out of a corrupted model must
    /// stay visible to serve-time guards, and `f64::max`/`clamp` would
    /// silently flush it to a plausible in-range value.
    pub fn unscale(&self, scaled: f32) -> f64 {
        if !scaled.is_finite() {
            return scaled as f64;
        }
        if self.span() == 0.0 {
            return self.min_log.exp() - 1.0;
        }
        let l = self.min_log + (scaled as f64).clamp(0.0, 1.0) * (self.max_log - self.min_log);
        (l.exp() - 1.0).max(0.0)
    }

    /// `max_log - min_log`, the de-scaling factor for the q-error loss.
    pub fn span(&self) -> f32 {
        (self.max_log - self.min_log) as f32
    }

    /// Smallest raw value representable by the scaler.
    pub fn min_value(&self) -> f64 {
        self.min_log.exp() - 1.0
    }

    /// Largest raw value representable by the scaler.
    pub fn max_value(&self) -> f64 {
        self.max_log.exp() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_range() {
        let s = LogMinMaxScaler::fit(&[0.0, 10.0, 100.0, 5000.0]);
        for &v in &[0.0, 1.0, 10.0, 99.0, 5000.0] {
            let back = s.unscale(s.scale(v));
            assert!(
                (back - v).abs() < 1e-2 * (v + 1.0),
                "roundtrip {v} -> {back}"
            );
        }
    }

    #[test]
    fn scale_clamps_out_of_range() {
        let s = LogMinMaxScaler::fit(&[1.0, 100.0]);
        assert_eq!(s.scale(0.0), 0.0);
        assert_eq!(s.scale(1e9), 1.0);
    }

    #[test]
    fn degenerate_single_value() {
        let s = LogMinMaxScaler::fit(&[7.0, 7.0]);
        assert_eq!(s.scale(7.0), 0.5);
        assert!((s.unscale(0.5) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn span_matches_log_range() {
        let s = LogMinMaxScaler::from_range(0.0, (std::f64::consts::E - 1.0) * 1.0);
        assert!((s.span() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unscale_propagates_non_finite_predictions() {
        let s = LogMinMaxScaler::fit(&[1.0, 100.0]);
        assert!(s.unscale(f32::NAN).is_nan());
        assert_eq!(s.unscale(f32::INFINITY), f64::INFINITY);
        assert_eq!(s.unscale(f32::NEG_INFINITY), f64::NEG_INFINITY);
        // Degenerate scalers must not mask non-finite predictions either.
        let d = LogMinMaxScaler::fit(&[7.0, 7.0]);
        assert!(d.unscale(f32::NAN).is_nan());
    }

    #[test]
    #[should_panic(expected = "empty targets")]
    fn empty_fit_panics() {
        let _ = LogMinMaxScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_target_panics() {
        let _ = LogMinMaxScaler::fit(&[-1.0]);
    }
}
