//! Activation functions with pointwise derivatives.

use serde::{Deserialize, Serialize};

/// Pointwise activation applied by dense layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `f(x) = x`
    Identity,
    /// `f(x) = max(0, x)`
    Relu,
    /// `f(x) = 1 / (1 + e^{-x})` — the output activation for every task in
    /// the paper (Table 1).
    Sigmoid,
    /// `f(x) = tanh(x)`
    Tanh,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)`.
    ///
    /// All four activations admit this form, which lets layers cache only
    /// their outputs for the backward pass.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Applies the activation to a buffer in place.
    pub fn apply_slice(self, xs: &mut [f32]) {
        if self == Activation::Identity {
            return;
        }
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn relu_and_derivative() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(3.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [Activation::Identity, Activation::Relu, Activation::Sigmoid, Activation::Tanh] {
            for &x in &[-1.7f32, -0.3, 0.4, 1.9] {
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 2e-3,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut xs = [-1.0f32, 0.0, 2.0];
        Activation::Sigmoid.apply_slice(&mut xs);
        assert!((xs[0] - sigmoid(-1.0)).abs() < 1e-7);
        assert!((xs[2] - sigmoid(2.0)).abs() < 1e-7);
    }
}
