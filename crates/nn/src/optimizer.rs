//! Gradient-descent optimizers operating on [`ParamBuf`]s.

use crate::param::ParamBuf;
use serde::{Deserialize, Serialize};

/// First-order optimizer. Adam is the default used across all tasks; plain
/// SGD is kept for ablations and tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Optimizer {
    /// Stochastic gradient descent with optional gradient clipping.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Per-component gradient clip; `None` disables clipping.
        clip: Option<f32>,
    },
    /// Adam (Kingma & Ba) with bias correction and optional clipping.
    Adam {
        /// Learning rate.
        lr: f32,
        /// Exponential decay for the first moment.
        beta1: f32,
        /// Exponential decay for the second moment.
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
        /// Per-component gradient clip; `None` disables clipping.
        clip: Option<f32>,
        /// Step counter for bias correction.
        t: u64,
    },
}

impl Optimizer {
    /// Adam with the standard defaults (`lr=1e-3`) and clipping at 5.0 —
    /// the q-error loss can produce large gradients early in training.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip: Some(5.0), t: 0 }
    }

    /// Plain SGD.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr, clip: Some(5.0) }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        match self {
            Optimizer::Sgd { lr, .. } | Optimizer::Adam { lr, .. } => *lr,
        }
    }

    /// Replaces the learning rate (used by the training harness when backing
    /// off after a divergence).
    pub fn set_learning_rate(&mut self, new_lr: f32) {
        match self {
            Optimizer::Sgd { lr, .. } | Optimizer::Adam { lr, .. } => *lr = new_lr,
        }
    }

    /// Advances the internal step counter. Call once per mini-batch, before
    /// stepping the batch's parameter buffers.
    pub fn begin_step(&mut self) {
        if let Optimizer::Adam { t, .. } = self {
            *t += 1;
        }
    }

    /// Applies one update to a parameter buffer from its accumulated
    /// gradient, then zeroes the gradient.
    pub fn step(&mut self, p: &mut ParamBuf) {
        match *self {
            Optimizer::Sgd { lr, clip } => {
                for (v, g) in p.value.iter_mut().zip(p.grad.iter()) {
                    let mut g = *g;
                    if let Some(c) = clip {
                        g = g.clamp(-c, c);
                    }
                    *v -= lr * g;
                }
            }
            Optimizer::Adam { lr, beta1, beta2, eps, clip, t } => {
                debug_assert!(t > 0, "call begin_step before step");
                if p.m.len() != p.value.len() {
                    p.m = vec![0.0; p.value.len()];
                    p.v = vec![0.0; p.value.len()];
                }
                let bc1 = 1.0 - beta1.powi(t as i32);
                let bc2 = 1.0 - beta2.powi(t as i32);
                for i in 0..p.value.len() {
                    let mut g = p.grad[i];
                    if let Some(c) = clip {
                        g = g.clamp(-c, c);
                    }
                    p.m[i] = beta1 * p.m[i] + (1.0 - beta1) * g;
                    p.v[i] = beta2 * p.v[i] + (1.0 - beta2) * g * g;
                    let m_hat = p.m[i] / bc1;
                    let v_hat = p.v[i] / bc2;
                    p.value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 with each optimizer.
    fn minimize(mut opt: Optimizer, steps: usize) -> f32 {
        let mut p = ParamBuf::new(vec![0.0]);
        for _ in 0..steps {
            opt.begin_step();
            p.grad[0] = 2.0 * (p.value[0] - 3.0);
            opt.step(&mut p);
        }
        p.value[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(Optimizer::sgd(0.1), 200);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(Optimizer::adam(0.05), 800);
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn step_zeroes_gradient() {
        let mut opt = Optimizer::sgd(0.1);
        let mut p = ParamBuf::new(vec![1.0]);
        p.grad[0] = 1.0;
        opt.step(&mut p);
        assert_eq!(p.grad[0], 0.0);
    }

    #[test]
    fn learning_rate_accessors_round_trip() {
        for mut opt in [Optimizer::sgd(0.1), Optimizer::adam(0.1)] {
            assert_eq!(opt.learning_rate(), 0.1);
            opt.set_learning_rate(0.05);
            assert_eq!(opt.learning_rate(), 0.05);
        }
    }

    #[test]
    fn clipping_bounds_the_update() {
        let mut opt = Optimizer::Sgd { lr: 1.0, clip: Some(0.5) };
        let mut p = ParamBuf::new(vec![0.0]);
        p.grad[0] = 100.0;
        opt.step(&mut p);
        assert_eq!(p.value[0], -0.5);
    }
}
