//! Fault-tolerant training harness.
//!
//! Wraps an epoch loop with the guard rails production training needs:
//!
//! * **Non-finite detection** — an epoch reporting NaN/∞ loss (or a model
//!   whose weights went non-finite) triggers recovery instead of silently
//!   poisoning every later epoch.
//! * **Divergence detection** — a finite loss that explodes past
//!   `divergence_factor × best` is treated the same way.
//! * **Automatic recovery** — restore the last-good weight snapshot, halve
//!   the learning rate (`lr_backoff`), and retry, up to `max_recoveries`
//!   times and never below `min_lr`.
//! * **Best-model tracking and early stopping** — the harness keeps the
//!   weights of the best epoch seen and stops after `patience` epochs
//!   without a `min_delta` improvement.
//!
//! The harness is model-agnostic: it never touches a network directly. The
//! caller drives it one epoch at a time —
//!
//! ```
//! use setlearn_nn::harness::{Decision, EpochStats, TrainHarness, TrainPolicy};
//!
//! let mut harness = TrainHarness::new(TrainPolicy::default(), 0.05);
//! let mut weights = vec![vec![1.0f32]]; // stand-in for real parameters
//! loop {
//!     let _lr = harness.lr(); // apply to the optimizer
//!     let stats = EpochStats::from_loss(0.1); // run one real epoch here
//!     match harness.end_epoch(&stats, || weights.clone()) {
//!         Decision::Continue => {}
//!         Decision::Restore(snapshot) => weights = snapshot, // reload + lower lr
//!         Decision::Stop(_) => break,
//!     }
//! }
//! let report = harness.finish();
//! assert!(report.best_loss.is_finite());
//! ```
//!
//! and loads `report`/`best_weights` back into the model afterwards.

use serde::{Deserialize, Serialize};
use setlearn_obs::{Counter, Field, Gauge, Histogram};
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Weight snapshot: one owned buffer per parameter tensor, in the model's
/// canonical buffer order.
pub type WeightSnapshot = Vec<Vec<f32>>;

/// Guard-rail configuration for [`TrainHarness`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainPolicy {
    /// Hard cap on total epochs (including retried ones).
    pub max_epochs: usize,
    /// Epochs without improvement before early stopping. `0` disables
    /// early stopping.
    pub patience: usize,
    /// Minimum loss decrease that counts as an improvement.
    pub min_delta: f32,
    /// How many divergence recoveries to attempt before giving up.
    pub max_recoveries: usize,
    /// Learning-rate multiplier applied on each recovery (e.g. `0.5`).
    pub lr_backoff: f32,
    /// Floor under the backed-off learning rate; reaching it stops training.
    pub min_lr: f32,
    /// A finite loss above `divergence_factor × best_loss` counts as
    /// divergence; `None` limits divergence detection to non-finite losses.
    pub divergence_factor: Option<f32>,
}

impl Default for TrainPolicy {
    fn default() -> Self {
        TrainPolicy {
            max_epochs: 200,
            patience: 0,
            min_delta: 1e-5,
            max_recoveries: 4,
            lr_backoff: 0.5,
            min_lr: 1e-6,
            divergence_factor: Some(1e3),
        }
    }
}

impl TrainPolicy {
    /// Policy running exactly `max_epochs` epochs (no early stopping) with
    /// the default recovery budget.
    pub fn epochs(max_epochs: usize) -> Self {
        TrainPolicy { max_epochs, ..Self::default() }
    }

    /// Validates the policy's internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_epochs == 0 {
            return Err("max_epochs must be positive".to_string());
        }
        if !(0.0 < self.lr_backoff && self.lr_backoff < 1.0) {
            return Err(format!("lr_backoff must be in (0, 1), got {}", self.lr_backoff));
        }
        if !self.min_lr.is_finite() || self.min_lr < 0.0 {
            return Err(format!("min_lr must be finite and non-negative, got {}", self.min_lr));
        }
        if let Some(f) = self.divergence_factor {
            if f.is_nan() || f <= 1.0 {
                return Err(format!("divergence_factor must exceed 1, got {f}"));
            }
        }
        Ok(())
    }
}

/// Outcome of one observed epoch, as seen by a guarded epoch runner.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochStats {
    /// Mean loss over the batches that actually stepped the model. NaN when
    /// every batch was skipped.
    pub mean_loss: f32,
    /// Batches that stepped the model.
    pub batches: usize,
    /// Batches dropped because their loss or gradient was non-finite.
    pub skipped_batches: usize,
    /// Batches whose global gradient norm was clipped.
    pub clipped_batches: usize,
    /// Largest global gradient norm observed across the epoch's batches
    /// (`0.0` when the runner does not track gradients).
    #[serde(default)]
    pub max_grad_norm: f32,
}

impl EpochStats {
    /// Stats for an epoch summarized only by its mean loss (plain
    /// `train_epoch` without guarded batch accounting).
    pub fn from_loss(mean_loss: f32) -> Self {
        EpochStats { mean_loss, batches: 1, ..Self::default() }
    }
}

/// Why the harness stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// `max_epochs` epochs ran.
    MaxEpochs,
    /// `patience` epochs elapsed without a `min_delta` improvement.
    EarlyStopping,
    /// Divergence persisted through `max_recoveries` restore attempts.
    RecoveryExhausted,
    /// Backing off the learning rate hit `min_lr`.
    LrFloor,
    /// The caller stopped the loop before any stop condition fired.
    Aborted,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::MaxEpochs => "reached max epochs",
            StopReason::EarlyStopping => "early stopping (no improvement)",
            StopReason::RecoveryExhausted => "recovery budget exhausted",
            StopReason::LrFloor => "learning rate hit its floor",
            StopReason::Aborted => "aborted by caller",
        };
        f.write_str(s)
    }
}

/// What the caller must do after reporting an epoch.
#[derive(Debug, Clone)]
pub enum Decision {
    /// Keep training with the current weights.
    Continue,
    /// The epoch diverged: load this snapshot back into the model, apply
    /// [`TrainHarness::lr`] (already backed off) to the optimizer, reset any
    /// optimizer moment state, and continue.
    Restore(WeightSnapshot),
    /// Stop training and load [`TrainHarness::best_weights`] if present.
    Stop(StopReason),
}

/// Structured summary of a harnessed training run. Task builders surface
/// this through their build reports and the CLI prints it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs observed (including ones that ended in a restore).
    pub epochs_run: usize,
    /// Mean loss of each *accepted* epoch (diverged epochs excluded, so the
    /// history is plottable).
    pub loss_history: Vec<f32>,
    /// Best accepted epoch loss.
    pub best_loss: f32,
    /// Index (into accepted epochs) of the best loss.
    pub best_epoch: usize,
    /// Divergence recoveries performed.
    pub recoveries: usize,
    /// Total batches skipped for non-finite loss/gradients.
    pub skipped_batches: usize,
    /// Total batches whose gradient norm was clipped.
    pub clipped_batches: usize,
    /// Final (possibly backed-off) learning rate.
    pub final_lr: f32,
    /// Why training stopped.
    pub stop_reason: StopReason,
}

impl TrainReport {
    /// True when training produced a usable model: at least one accepted
    /// epoch with a finite loss.
    pub fn is_healthy(&self) -> bool {
        self.best_loss.is_finite() && !self.loss_history.is_empty()
    }
}

impl fmt::Display for TrainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} epochs, best loss {:.6} at epoch {}, {} recoveries, \
             {} skipped / {} clipped batches, final lr {:.2e} ({})",
            self.epochs_run,
            self.best_loss,
            self.best_epoch,
            self.recoveries,
            self.skipped_batches,
            self.clipped_batches,
            self.final_lr,
            self.stop_reason,
        )
    }
}

/// Epoch wall-clock histogram bounds in seconds (1 ms … 60 s).
const EPOCH_SECONDS_BOUNDS: &[f64] =
    &[0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0];

/// Cached handles into the global metrics registry so the per-epoch hot path
/// never takes the registry's name-resolution lock.
struct TrainTele {
    epochs: Arc<Counter>,
    recoveries: Arc<Counter>,
    skipped: Arc<Counter>,
    clipped: Arc<Counter>,
    loss: Arc<Gauge>,
    lr: Arc<Gauge>,
    grad_norm: Arc<Gauge>,
    epoch_seconds: Arc<Histogram>,
}

fn train_tele() -> &'static TrainTele {
    static TELE: OnceLock<TrainTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let m = setlearn_obs::metrics();
        TrainTele {
            epochs: m.counter("setlearn_train_epochs_total"),
            recoveries: m.counter("setlearn_train_recoveries_total"),
            skipped: m.counter("setlearn_train_skipped_batches_total"),
            clipped: m.counter("setlearn_train_clipped_batches_total"),
            loss: m.gauge("setlearn_train_loss"),
            lr: m.gauge("setlearn_train_lr"),
            grad_norm: m.gauge("setlearn_train_grad_norm"),
            epoch_seconds: m.histogram("setlearn_train_epoch_seconds", EPOCH_SECONDS_BOUNDS),
        }
    })
}

/// Fault-tolerant epoch-loop supervisor. See the module docs for the
/// driving protocol.
#[derive(Debug, Clone)]
pub struct TrainHarness {
    policy: TrainPolicy,
    lr: f32,
    epochs_run: usize,
    history: Vec<f32>,
    best_loss: f32,
    best_epoch: usize,
    best_weights: Option<WeightSnapshot>,
    last_good: Option<WeightSnapshot>,
    stale_epochs: usize,
    recoveries: usize,
    skipped_batches: usize,
    clipped_batches: usize,
    stopped: Option<StopReason>,
    epoch_started: Instant,
}

impl TrainHarness {
    /// Builds a harness from a policy and the optimizer's initial learning
    /// rate.
    ///
    /// # Panics
    /// On an invalid policy or a non-finite/non-positive learning rate; use
    /// [`TrainPolicy::validate`] to check ahead of time.
    pub fn new(policy: TrainPolicy, initial_lr: f32) -> Self {
        if let Err(e) = policy.validate() {
            panic!("invalid train policy: {e}");
        }
        assert!(
            initial_lr.is_finite() && initial_lr > 0.0,
            "initial learning rate must be finite and positive"
        );
        TrainHarness {
            policy,
            lr: initial_lr,
            epochs_run: 0,
            history: Vec::new(),
            best_loss: f32::INFINITY,
            best_epoch: 0,
            best_weights: None,
            last_good: None,
            stale_epochs: 0,
            recoveries: 0,
            skipped_batches: 0,
            clipped_batches: 0,
            stopped: None,
            epoch_started: Instant::now(),
        }
    }

    /// The learning rate the next epoch should train with.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Best weights seen so far (set after the first accepted epoch).
    pub fn best_weights(&self) -> Option<&WeightSnapshot> {
        self.best_weights.as_ref()
    }

    /// Reports one finished epoch. `snapshot` is only invoked when the
    /// harness needs to capture the current (healthy) weights.
    pub fn end_epoch<F>(&mut self, stats: &EpochStats, snapshot: F) -> Decision
    where
        F: FnOnce() -> WeightSnapshot,
    {
        if let Some(reason) = self.stopped {
            return Decision::Stop(reason);
        }
        let epoch_dur = self.epoch_started.elapsed();
        self.epoch_started = Instant::now();
        self.epochs_run += 1;
        self.skipped_batches += stats.skipped_batches;
        self.clipped_batches += stats.clipped_batches;

        let loss = stats.mean_loss;
        let diverged = !loss.is_finite()
            || stats.batches == 0
            || self
                .policy
                .divergence_factor
                .is_some_and(|f| self.best_loss.is_finite() && loss > self.best_loss * f);

        self.telemetry_epoch(stats, diverged, epoch_dur);

        if diverged {
            return self.recover();
        }

        self.history.push(loss);
        let improved = loss < self.best_loss - self.policy.min_delta;
        let weights = snapshot();
        if improved {
            self.best_loss = loss;
            self.best_epoch = self.history.len() - 1;
            self.best_weights = Some(weights.clone());
            self.stale_epochs = 0;
        } else {
            self.stale_epochs += 1;
        }
        // First accepted epoch also seeds best-tracking even if `improved`
        // was false against an infinite best minus delta rounding.
        if self.best_weights.is_none() {
            self.best_loss = loss;
            self.best_epoch = self.history.len() - 1;
            self.best_weights = Some(weights.clone());
        }
        self.last_good = Some(weights);

        if self.epochs_run >= self.policy.max_epochs {
            return self.stop(StopReason::MaxEpochs);
        }
        if self.policy.patience > 0 && self.stale_epochs >= self.policy.patience {
            return self.stop(StopReason::EarlyStopping);
        }
        Decision::Continue
    }

    /// Publishes one epoch's metrics and (at `Full` telemetry) a
    /// `train_epoch` span. Diverged epochs keep the previous loss gauge so a
    /// dashboard shows the last *accepted* loss.
    fn telemetry_epoch(&self, stats: &EpochStats, diverged: bool, dur: std::time::Duration) {
        if setlearn_obs::metrics_on() {
            let t = train_tele();
            t.epochs.inc();
            t.skipped.add(stats.skipped_batches as u64);
            t.clipped.add(stats.clipped_batches as u64);
            t.lr.set(self.lr as f64);
            if !diverged {
                t.loss.set(stats.mean_loss as f64);
            }
            if stats.max_grad_norm.is_finite() && stats.max_grad_norm > 0.0 {
                t.grad_norm.set(stats.max_grad_norm as f64);
            }
            t.epoch_seconds.observe(dur.as_secs_f64());
        }
        if setlearn_obs::tracing_on() {
            let tracer = setlearn_obs::tracer();
            let dur_us = dur.as_micros() as u64;
            let start_us = tracer.now_us().saturating_sub(dur_us);
            tracer.push_span(
                "train_epoch",
                start_us,
                vec![
                    Field::num("epoch", self.epochs_run as f64),
                    Field::num("loss", stats.mean_loss as f64),
                    Field::num("lr", self.lr as f64),
                    Field::num("batches", stats.batches as f64),
                    Field::num("skipped_batches", stats.skipped_batches as f64),
                    Field::num("clipped_batches", stats.clipped_batches as f64),
                    Field::num("max_grad_norm", stats.max_grad_norm as f64),
                    Field::text("outcome", if diverged { "diverged" } else { "accepted" }),
                ],
            );
        }
    }

    fn recover(&mut self) -> Decision {
        if self.recoveries >= self.policy.max_recoveries {
            return self.stop(StopReason::RecoveryExhausted);
        }
        let Some(snapshot) = self.last_good.clone().or_else(|| self.best_weights.clone()) else {
            // Divergence before any good epoch: nothing to restore, so the
            // caller keeps the fresh initialization and retries at lower lr.
            return self.backoff_or_stop(Vec::new());
        };
        self.backoff_or_stop(snapshot)
    }

    fn backoff_or_stop(&mut self, snapshot: WeightSnapshot) -> Decision {
        let new_lr = self.lr * self.policy.lr_backoff;
        if new_lr < self.policy.min_lr {
            return self.stop(StopReason::LrFloor);
        }
        self.lr = new_lr;
        self.recoveries += 1;
        if setlearn_obs::metrics_on() {
            train_tele().recoveries.inc();
            setlearn_obs::tracer().push_event(
                "train_recovery",
                vec![
                    Field::num("epoch", self.epochs_run as f64),
                    Field::num("lr", self.lr as f64),
                    Field::num("recoveries", self.recoveries as f64),
                ],
            );
        }
        if self.epochs_run >= self.policy.max_epochs {
            return self.stop(StopReason::MaxEpochs);
        }
        Decision::Restore(snapshot)
    }

    fn stop(&mut self, reason: StopReason) -> Decision {
        self.stopped = Some(reason);
        Decision::Stop(reason)
    }

    /// Finalizes the run into a [`TrainReport`]. Callable at any point; a
    /// loop exited without a `Stop` decision reports [`StopReason::Aborted`].
    pub fn finish(self) -> TrainReport {
        TrainReport {
            epochs_run: self.epochs_run,
            best_loss: self.best_loss,
            best_epoch: self.best_epoch,
            recoveries: self.recoveries,
            skipped_batches: self.skipped_batches,
            clipped_batches: self.clipped_batches,
            final_lr: self.lr,
            stop_reason: self.stopped.unwrap_or(StopReason::Aborted),
            loss_history: self.history,
        }
    }

    /// Finalizes the run and hands back the best weights (if any) for the
    /// caller to load into the model.
    pub fn finish_with_best(mut self) -> (TrainReport, Option<WeightSnapshot>) {
        let best = self.best_weights.take();
        (self.finish(), best)
    }
}

/// Global (all-buffer) L2 gradient norm.
pub fn global_grad_norm<'a, I: IntoIterator<Item = &'a [f32]>>(grads: I) -> f32 {
    let sum: f64 = grads
        .into_iter()
        .flat_map(|g| g.iter())
        .map(|&g| (g as f64) * (g as f64))
        .sum();
    sum.sqrt() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: f32) -> WeightSnapshot {
        vec![vec![v]]
    }

    #[test]
    fn clean_run_tracks_best_and_stops_at_max_epochs() {
        let mut h = TrainHarness::new(TrainPolicy::epochs(3), 0.1);
        let losses = [0.5, 0.3, 0.4];
        let mut decisions = Vec::new();
        for (i, &l) in losses.iter().enumerate() {
            decisions.push(h.end_epoch(&EpochStats::from_loss(l), || w(i as f32)));
        }
        assert!(matches!(decisions[0], Decision::Continue));
        assert!(matches!(decisions[1], Decision::Continue));
        assert!(matches!(decisions[2], Decision::Stop(StopReason::MaxEpochs)));
        let (report, best) = h.finish_with_best();
        assert_eq!(report.best_loss, 0.3);
        assert_eq!(report.best_epoch, 1);
        assert_eq!(best.unwrap(), w(1.0));
        assert_eq!(report.loss_history, vec![0.5, 0.3, 0.4]);
        assert!(report.is_healthy());
    }

    #[test]
    fn nan_epoch_restores_last_good_and_halves_lr() {
        let mut h = TrainHarness::new(TrainPolicy::epochs(10), 0.2);
        assert!(matches!(h.end_epoch(&EpochStats::from_loss(0.5), || w(1.0)), Decision::Continue));
        let d = h.end_epoch(&EpochStats::from_loss(f32::NAN), || unreachable!());
        match d {
            Decision::Restore(snap) => assert_eq!(snap, w(1.0)),
            other => panic!("expected restore, got {other:?}"),
        }
        assert_eq!(h.lr(), 0.1);
        let report = h.finish();
        assert_eq!(report.recoveries, 1);
        // The NaN epoch is not part of the plottable history.
        assert_eq!(report.loss_history, vec![0.5]);
    }

    #[test]
    fn divergence_factor_triggers_recovery_on_finite_explosion() {
        let mut policy = TrainPolicy::epochs(10);
        policy.divergence_factor = Some(10.0);
        let mut h = TrainHarness::new(policy, 0.2);
        let _ = h.end_epoch(&EpochStats::from_loss(0.5), || w(1.0));
        assert!(matches!(
            h.end_epoch(&EpochStats::from_loss(50.0), || unreachable!()),
            Decision::Restore(_)
        ));
    }

    #[test]
    fn recovery_budget_exhaustion_stops() {
        let mut policy = TrainPolicy::epochs(100);
        policy.max_recoveries = 2;
        let mut h = TrainHarness::new(policy, 0.2);
        let _ = h.end_epoch(&EpochStats::from_loss(0.5), || w(1.0));
        assert!(matches!(h.end_epoch(&EpochStats::from_loss(f32::NAN), || w(0.0)), Decision::Restore(_)));
        assert!(matches!(h.end_epoch(&EpochStats::from_loss(f32::NAN), || w(0.0)), Decision::Restore(_)));
        let d = h.end_epoch(&EpochStats::from_loss(f32::NAN), || w(0.0));
        assert!(matches!(d, Decision::Stop(StopReason::RecoveryExhausted)));
        let report = h.finish();
        assert_eq!(report.recoveries, 2);
        assert_eq!(report.stop_reason, StopReason::RecoveryExhausted);
        // Best model from before the divergence is still available.
        assert_eq!(report.best_loss, 0.5);
    }

    #[test]
    fn lr_floor_stops_before_budget() {
        let mut policy = TrainPolicy::epochs(100);
        policy.max_recoveries = 50;
        policy.min_lr = 0.06;
        let mut h = TrainHarness::new(policy, 0.2);
        let _ = h.end_epoch(&EpochStats::from_loss(0.5), || w(1.0));
        assert!(matches!(h.end_epoch(&EpochStats::from_loss(f32::NAN), || w(0.0)), Decision::Restore(_)));
        // 0.1 -> 0.05 would cross the 0.06 floor.
        let d = h.end_epoch(&EpochStats::from_loss(f32::NAN), || w(0.0));
        assert!(matches!(d, Decision::Stop(StopReason::LrFloor)));
    }

    #[test]
    fn early_stopping_fires_after_patience() {
        let mut policy = TrainPolicy::epochs(100);
        policy.patience = 2;
        policy.min_delta = 0.01;
        let mut h = TrainHarness::new(policy, 0.1);
        let _ = h.end_epoch(&EpochStats::from_loss(0.5), || w(0.0));
        let _ = h.end_epoch(&EpochStats::from_loss(0.499), || w(1.0)); // < min_delta: stale
        let d = h.end_epoch(&EpochStats::from_loss(0.498), || w(2.0)); // stale again
        assert!(matches!(d, Decision::Stop(StopReason::EarlyStopping)));
        let report = h.finish();
        assert_eq!(report.best_loss, 0.5);
        assert_eq!(report.best_epoch, 0);
    }

    #[test]
    fn divergence_before_any_good_epoch_restores_empty_snapshot() {
        let mut h = TrainHarness::new(TrainPolicy::epochs(10), 0.2);
        match h.end_epoch(&EpochStats::from_loss(f32::INFINITY), || unreachable!()) {
            Decision::Restore(snap) => assert!(snap.is_empty()),
            other => panic!("expected restore, got {other:?}"),
        }
        assert_eq!(h.lr(), 0.1);
    }

    #[test]
    fn all_batches_skipped_counts_as_divergence() {
        let mut h = TrainHarness::new(TrainPolicy::epochs(10), 0.2);
        let _ = h.end_epoch(&EpochStats::from_loss(0.5), || w(1.0));
        let stats = EpochStats { mean_loss: 0.0, batches: 0, skipped_batches: 7, ..Default::default() };
        assert!(matches!(h.end_epoch(&stats, || unreachable!()), Decision::Restore(_)));
        assert_eq!(h.finish().skipped_batches, 7);
    }

    #[test]
    fn finish_without_stop_reports_aborted() {
        let mut h = TrainHarness::new(TrainPolicy::epochs(10), 0.1);
        let _ = h.end_epoch(&EpochStats::from_loss(0.4), || w(1.0));
        let report = h.finish();
        assert_eq!(report.stop_reason, StopReason::Aborted);
        assert!(report.is_healthy());
    }

    #[test]
    fn global_grad_norm_is_an_l2_norm() {
        let a = [3.0f32];
        let b = [4.0f32];
        assert_eq!(global_grad_norm([&a[..], &b[..]]), 5.0);
        assert_eq!(global_grad_norm(std::iter::empty::<&[f32]>()), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid train policy")]
    fn zero_epoch_policy_rejected() {
        let _ = TrainHarness::new(TrainPolicy::epochs(0), 0.1);
    }

    #[test]
    fn report_serializes() {
        let mut h = TrainHarness::new(TrainPolicy::epochs(1), 0.1);
        let _ = h.end_epoch(&EpochStats::from_loss(0.4), || w(1.0));
        let report = h.finish();
        let json = serde_json::to_string(&report).unwrap();
        let back: TrainReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.best_loss, report.best_loss);
        assert_eq!(back.stop_reason, report.stop_reason);
    }
}
