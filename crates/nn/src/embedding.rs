//! Shared embedding table with scatter-add backward.

use crate::init;
use crate::matrix::Matrix;
use crate::param::ParamBuf;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A `vocab x dim` embedding matrix shared across all set elements — the
/// core weight-sharing trick that makes DeepSets permutation invariant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    vocab: usize,
    dim: usize,
    table: ParamBuf,
    #[serde(skip)]
    cached_ids: Option<Vec<u32>>,
}

impl Embedding {
    /// Creates a table for `vocab` ids with `dim`-dimensional vectors.
    pub fn new(rng: &mut StdRng, vocab: usize, dim: usize) -> Self {
        assert!(vocab > 0, "embedding vocabulary must be non-empty");
        assert!(dim > 0, "embedding dimension must be positive");
        Embedding {
            vocab,
            dim,
            table: ParamBuf::new(init::embedding_uniform(rng, vocab, dim)),
            cached_ids: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a batch of ids: `[N] -> [N x dim]`, caching ids for backward.
    ///
    /// # Panics
    /// If any id is out of vocabulary; callers own vocabulary mapping.
    pub fn forward(&mut self, ids: &[u32]) -> Matrix {
        let out = self.predict(ids);
        self.cached_ids = Some(ids.to_vec());
        out
    }

    /// Inference-only lookup, no state cached.
    pub fn predict(&self, ids: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            let id = id as usize;
            assert!(id < self.vocab, "embedding id {id} out of vocab {}", self.vocab);
            out.row_mut(r)
                .copy_from_slice(&self.table.value[id * self.dim..(id + 1) * self.dim]);
        }
        out
    }

    /// Scatter-adds `dL/dE` rows into the table gradient.
    pub fn backward(&mut self, grad_output: &Matrix) {
        let ids = self.cached_ids.take().expect("backward before forward");
        self.accumulate_grad(&ids, grad_output);
    }

    /// Cache-free gradient accumulation for callers that manage their own
    /// per-set caches (e.g. the Set Transformer's per-set loops).
    pub fn accumulate_grad(&mut self, ids: &[u32], grad_output: &Matrix) {
        assert_eq!(grad_output.rows(), ids.len());
        assert_eq!(grad_output.cols(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            let id = id as usize;
            let dst = &mut self.table.grad[id * self.dim..(id + 1) * self.dim];
            for (g, &d) in dst.iter_mut().zip(grad_output.row(r).iter()) {
                *g += d;
            }
        }
    }

    /// Mutable parameter buffer access for the optimizer.
    pub fn params_mut(&mut self) -> [&mut ParamBuf; 1] {
        [&mut self.table]
    }

    /// Immutable parameter buffer access.
    pub fn params(&self) -> [&ParamBuf; 1] {
        [&self.table]
    }

    /// Scalar parameter count (`vocab * dim`).
    pub fn num_params(&self) -> usize {
        self.table.len()
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.table.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Embedding::new(&mut rng, 4, 3);
        let out = emb.predict(&[2, 0, 2]);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(0), out.row(2));
        assert_eq!(out.row(1), &emb.params()[0].value[0..3]);
    }

    #[test]
    fn backward_scatter_adds_duplicates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut emb = Embedding::new(&mut rng, 3, 2);
        emb.zero_grad();
        emb.forward(&[1, 1]);
        let grad = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        emb.backward(&grad);
        assert_eq!(&emb.params()[0].grad[2..4], &[4.0, 6.0]);
        assert_eq!(&emb.params()[0].grad[0..2], &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Embedding::new(&mut rng, 3, 2);
        let _ = emb.predict(&[3]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let emb = Embedding::new(&mut rng, 5, 2);
        let json = serde_json::to_string(&emb).unwrap();
        let back: Embedding = serde_json::from_str(&json).unwrap();
        assert_eq!(emb.predict(&[0, 4]), back.predict(&[0, 4]));
    }
}
