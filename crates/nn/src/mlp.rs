//! A stack of dense layers — the φ and ρ transformations of DeepSets.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::matrix::Matrix;
use crate::param::ParamBuf;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A feed-forward stack of [`Dense`] layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP from a layer-size chain. `dims = [in, h1, ..., out]`,
    /// hidden layers use `hidden_act`, the final layer uses `output_act`.
    ///
    /// # Panics
    /// If fewer than two dims are given.
    pub fn new(
        rng: &mut StdRng,
        dims: &[usize],
        hidden_act: Activation,
        output_act: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() { output_act } else { hidden_act };
            layers.push(Dense::new(rng, dims[i], dims[i + 1], act));
        }
        Mlp { layers }
    }

    /// Input width of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// The dense layers, first layer first — read access for inference
    /// kernels that re-lay-out the weights (e.g. `setlearn`'s frozen
    /// serving path).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Output width of the last layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Training forward pass; caches per-layer state.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Inference-only forward pass.
    pub fn predict(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.predict(&x);
        }
        x
    }

    /// Backward pass through all layers; returns `dL/dInput`.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All parameter buffers, first layer first.
    pub fn params_mut(&mut self) -> Vec<&mut ParamBuf> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Immutable parameter buffers.
    pub fn params(&self) -> Vec<&ParamBuf> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn chain_dims() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&mut rng, &[4, 8, 8, 1], Activation::Relu, Activation::Sigmoid);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 1);
        assert_eq!(mlp.num_params(), 4 * 8 + 8 + 8 * 8 + 8 + 8 + 1);
    }

    #[test]
    fn backward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&mut rng, &[3, 5, 2], Activation::Tanh, Activation::Identity);
        mlp.zero_grad();
        let x = Matrix::from_vec(4, 3, vec![0.1; 12]);
        let y = mlp.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        let g = mlp.backward(&Matrix::from_vec(4, 2, vec![1.0; 8]));
        assert_eq!((g.rows(), g.cols()), (4, 3));
    }

    #[test]
    fn gradient_check_through_two_layers() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut mlp = Mlp::new(&mut rng, &[2, 4, 1], Activation::Tanh, Activation::Sigmoid);
        mlp.zero_grad();
        let x = Matrix::from_vec(1, 2, vec![0.4, -0.6]);
        let y = mlp.forward(&x);
        mlp.backward(&Matrix::from_vec(1, 1, vec![1.0]));
        let analytic = mlp.params()[0].grad[0];

        let eps = 1e-3;
        let orig = mlp.params()[0].value[0];
        mlp.params_mut()[0].value[0] = orig + eps;
        let plus = mlp.predict(&x).data()[0];
        mlp.params_mut()[0].value[0] = orig - eps;
        let minus = mlp.predict(&x).data()[0];
        mlp.params_mut()[0].value[0] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 5e-3,
            "numeric {numeric} vs analytic {analytic}, y={:?}",
            y.data()
        );
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_dims_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Mlp::new(&mut rng, &[4], Activation::Relu, Activation::Identity);
    }
}
