//! # setlearn-nn
//!
//! A minimal, dependency-light neural-network substrate with manual
//! backpropagation, written for the `setlearn` reproduction of *Learning over
//! Sets for Databases* (EDBT 2024).
//!
//! The paper's models are small — embedding dims 2–32 and one or two dense
//! layers of 8–256 neurons — so this crate favors simplicity and
//! determinism over raw throughput:
//!
//! * [`matrix::Matrix`] — dense row-major `f32` matrices with the three GEMM
//!   variants layers need (`AB`, `AᵀB`, `ABᵀ`).
//! * [`dense::Dense`] / [`mlp::Mlp`] — fully connected layers with cached
//!   forward state and finite-difference-tested gradients.
//! * [`embedding::Embedding`] — the shared per-element table that gives
//!   DeepSets its permutation invariance.
//! * [`lstm::Lstm`] / [`gru::Gru`] — sequence baselines for the paper's
//!   digit-sum generalization experiment (Figure 7).
//! * [`loss::Loss`] — MSE / MAE / BCE and the paper's q-error training loss.
//! * [`optimizer::Optimizer`] — SGD and Adam over [`param::ParamBuf`]s.
//! * [`scaling::LogMinMaxScaler`] — the log + min-max target transform of
//!   §4.1.
//! * [`harness::TrainHarness`] — fault-tolerant epoch supervision:
//!   non-finite detection, snapshot/restore recovery with learning-rate
//!   backoff, best-model tracking and early stopping.
//!
//! Every layer follows the same contract: `forward` caches what `backward`
//! needs, `backward` accumulates into `ParamBuf::grad`, and the optimizer
//! consumes and zeroes those gradients.

#![warn(missing_docs)]

pub mod activation;
pub mod attention;
pub mod dense;
pub mod embedding;
pub mod gru;
pub mod harness;
pub mod hash_embedding;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod mlp;
pub mod optimizer;
pub mod param;
mod rnn_util;
pub mod scaling;

pub use activation::Activation;
pub use attention::{Attention, PmaPool, Sab};
pub use dense::Dense;
pub use embedding::Embedding;
pub use gru::Gru;
pub use harness::{
    Decision, EpochStats, StopReason, TrainHarness, TrainPolicy, TrainReport, WeightSnapshot,
};
pub use hash_embedding::HashEmbedding;
pub use loss::{q_error, Loss};
pub use lstm::Lstm;
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use optimizer::Optimizer;
pub use param::ParamBuf;
pub use scaling::LogMinMaxScaler;
