//! Trainable parameter buffers.
//!
//! Every layer owns one or more [`ParamBuf`]s: a flat value vector paired with
//! a gradient accumulator and (lazily allocated) Adam moment vectors. The
//! optimizer visits buffers through [`crate::optimizer::Optimizer::step`];
//! keeping moments inside the buffer avoids a global registry and keeps
//! layers independently serializable.

use serde::{Deserialize, Serialize};

/// A flat trainable parameter vector with its gradient and optimizer state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamBuf {
    /// Parameter values.
    pub value: Vec<f32>,
    /// Gradient accumulator, same length as `value`.
    #[serde(skip)]
    pub grad: Vec<f32>,
    /// Adam first-moment estimates (empty until the optimizer touches it).
    #[serde(skip)]
    pub m: Vec<f32>,
    /// Adam second-moment estimates (empty until the optimizer touches it).
    #[serde(skip)]
    pub v: Vec<f32>,
}

impl ParamBuf {
    /// Creates a buffer from initial values with a zeroed gradient.
    pub fn new(value: Vec<f32>) -> Self {
        let n = value.len();
        ParamBuf { value, grad: vec![0.0; n], m: Vec::new(), v: Vec::new() }
    }

    /// Number of scalar parameters in the buffer.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the buffer holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the gradient accumulator to zero (and re-allocates it after
    /// deserialization, where `grad` is skipped).
    pub fn zero_grad(&mut self) {
        if self.grad.len() != self.value.len() {
            self.grad = vec![0.0; self.value.len()];
        } else {
            self.grad.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Serialized size in bytes when storing the weights as `f32`s, the
    /// measure the paper uses for model memory (weights-only pickle).
    pub fn size_bytes(&self) -> usize {
        self.value.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_grad_resets() {
        let mut p = ParamBuf::new(vec![1.0, 2.0]);
        p.grad[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_grad_reallocates_after_deserialize() {
        let p = ParamBuf::new(vec![1.0, 2.0, 3.0]);
        let json = serde_json::to_string(&p).unwrap();
        let mut back: ParamBuf = serde_json::from_str(&json).unwrap();
        assert!(back.grad.is_empty());
        back.zero_grad();
        assert_eq!(back.grad.len(), 3);
    }

    #[test]
    fn size_bytes_counts_f32() {
        let p = ParamBuf::new(vec![0.0; 10]);
        assert_eq!(p.size_bytes(), 40);
    }
}
