//! Collection reordering strategies.
//!
//! The paper stresses that a collection of sets is stored in *arbitrary
//! order* (§1), which is precisely what makes the learned index's
//! key→position mapping hard — unlike one-dimensional learned indexes that
//! sort their keys first. When the application is free to choose the storage
//! order, reordering the collection can restore much of that learnability;
//! the `abl_ordering` bench quantifies it. Each strategy returns the
//! reordered collection plus the permutation (`new position -> old
//! position`) so external row ids can be remapped.

use crate::collection::SetCollection;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Applies a permutation: entry `i` of the result is `collection[perm[i]]`.
fn apply(collection: &SetCollection, perm: &[usize]) -> SetCollection {
    let sets: Vec<Vec<u32>> = perm.iter().map(|&i| collection.get(i).to_vec()).collect();
    SetCollection::new(sets, collection.num_elements())
}

/// Sorts sets lexicographically by their canonical element sequence — the
/// strongest order signal a model can exploit (similar sets land at similar
/// positions).
pub fn lexicographic(collection: &SetCollection) -> (SetCollection, Vec<usize>) {
    let mut perm: Vec<usize> = (0..collection.len()).collect();
    perm.sort_by(|&a, &b| collection.get(a).cmp(collection.get(b)));
    (apply(collection, &perm), perm)
}

/// Sorts sets by their globally most frequent element (ties broken
/// lexicographically) — clusters sets sharing popular elements.
pub fn by_head_element(collection: &SetCollection) -> (SetCollection, Vec<usize>) {
    let mut freq = vec![0u64; collection.num_elements() as usize];
    for (_, s) in collection.iter() {
        for &e in s {
            freq[e as usize] += 1;
        }
    }
    let head = |i: usize| -> u32 {
        *collection
            .get(i)
            .iter()
            .max_by_key(|&&e| (freq[e as usize], std::cmp::Reverse(e)))
            .expect("non-empty set")
    };
    let mut perm: Vec<usize> = (0..collection.len()).collect();
    perm.sort_by(|&a, &b| head(a).cmp(&head(b)).then_with(|| collection.get(a).cmp(collection.get(b))));
    (apply(collection, &perm), perm)
}

/// Uniform random shuffle — the adversarial control case.
pub fn random(collection: &SetCollection, seed: u64) -> (SetCollection, Vec<usize>) {
    let mut perm: Vec<usize> = (0..collection.len()).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    (apply(collection, &perm), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GeneratorConfig;

    fn is_permutation(perm: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        perm.iter().all(|&i| {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
            true
        }) && perm.len() == n
    }

    #[test]
    fn lexicographic_orders_sets() {
        let c = GeneratorConfig::rw(500, 3).generate();
        let (sorted, perm) = lexicographic(&c);
        assert!(is_permutation(&perm, c.len()));
        for i in 1..sorted.len() {
            assert!(sorted.get(i - 1) <= sorted.get(i), "row {i} out of order");
        }
    }

    #[test]
    fn permutation_maps_back_to_originals() {
        let c = GeneratorConfig::sd(200, 5).generate();
        let (sorted, perm) = lexicographic(&c);
        for (new_pos, &old_pos) in perm.iter().enumerate() {
            assert_eq!(sorted.get(new_pos), c.get(old_pos));
        }
    }

    #[test]
    fn reordering_preserves_cardinalities() {
        let c = GeneratorConfig::rw(300, 9).generate();
        let q = &c.get(0)[..2];
        let truth = c.cardinality(q);
        for (re, _) in [lexicographic(&c), by_head_element(&c), random(&c, 1)] {
            assert_eq!(re.cardinality(q), truth);
        }
    }

    #[test]
    fn head_element_clusters_popular_elements() {
        let c = GeneratorConfig::tweets(500, 7).generate();
        let (re, perm) = by_head_element(&c);
        assert!(is_permutation(&perm, c.len()));
        assert_eq!(re.len(), c.len());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let c = GeneratorConfig::sd(100, 1).generate();
        assert_eq!(random(&c, 5).1, random(&c, 5).1);
        assert_ne!(random(&c, 5).1, random(&c, 6).1);
    }
}
