//! Canonical set representation and subset algebra.
//!
//! A set is stored as a sorted, deduplicated `Box<[u32]>` of element ids.
//! Sorting is an internal *storage* canonicalization only — models consume
//! sets through permutation-invariant encoders, and the property tests in
//! `setlearn` feed deliberately shuffled inputs to prove order independence.

/// A canonical set of element ids: sorted, duplicate-free.
pub type ElementSet = Box<[u32]>;

/// Canonicalizes raw ids into an [`ElementSet`] (sort + dedup).
pub fn normalize(mut ids: Vec<u32>) -> ElementSet {
    ids.sort_unstable();
    ids.dedup();
    ids.into_boxed_slice()
}

/// Whether sorted `sub` is a subset of sorted `sup` (merge walk, `O(n + m)`).
pub fn is_subset(sub: &[u32], sup: &[u32]) -> bool {
    debug_assert!(sub.windows(2).all(|w| w[0] < w[1]), "sub not canonical");
    debug_assert!(sup.windows(2).all(|w| w[0] < w[1]), "sup not canonical");
    if sub.len() > sup.len() {
        return false;
    }
    let mut j = 0;
    for &x in sub {
        while j < sup.len() && sup[j] < x {
            j += 1;
        }
        if j == sup.len() || sup[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Iterates all non-empty subsets of `set` with size at most `max_size`,
/// invoking `f` on each (as a canonical sorted slice).
///
/// The enumeration is combination-based, so a set of size `k` yields
/// `Σ_{i=1..min(k,max_size)} C(k, i)` subsets.
pub fn for_each_subset<F: FnMut(&[u32])>(set: &[u32], max_size: usize, mut f: F) {
    let k = set.len();
    let cap = max_size.min(k);
    let mut scratch: Vec<u32> = Vec::with_capacity(cap);
    // Iterative combinations by size to avoid recursion depth concerns.
    fn rec<F: FnMut(&[u32])>(
        set: &[u32],
        start: usize,
        remaining: usize,
        scratch: &mut Vec<u32>,
        f: &mut F,
    ) {
        if remaining == 0 {
            f(scratch);
            return;
        }
        // Not enough elements left to fill the combination.
        let last_start = set.len() - remaining;
        for i in start..=last_start {
            scratch.push(set[i]);
            rec(set, i + 1, remaining - 1, scratch, f);
            scratch.pop();
        }
    }
    for size in 1..=cap {
        rec(set, 0, size, &mut scratch, &mut f);
    }
}

/// Number of subsets `for_each_subset` yields for a set of size `k`.
pub fn subset_count(k: usize, max_size: usize) -> u64 {
    let cap = max_size.min(k);
    let mut total = 0u64;
    for size in 1..=cap {
        total += binomial(k as u64, size as u64);
    }
    total
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1u64;
    for i in 0..k {
        num = num * (n - i) / (i + 1);
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts_and_dedups() {
        assert_eq!(&*normalize(vec![3, 1, 3, 2]), &[1, 2, 3]);
        assert!(normalize(vec![]).is_empty());
    }

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 2, 3], &[1, 2]));
        assert!(is_subset(&[2], &[2]));
    }

    #[test]
    fn enumerates_all_subsets_up_to_cap() {
        let mut got: Vec<Vec<u32>> = Vec::new();
        for_each_subset(&[1, 2, 3], 2, |s| got.push(s.to_vec()));
        assert_eq!(
            got,
            vec![
                vec![1],
                vec![2],
                vec![3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn full_powerset_when_cap_exceeds_size() {
        let mut n = 0;
        for_each_subset(&[1, 2, 3, 4], 10, |_| n += 1);
        assert_eq!(n, 15); // 2^4 - 1
        assert_eq!(subset_count(4, 10), 15);
    }

    #[test]
    fn subset_count_matches_enumeration() {
        for k in 1..=7usize {
            for cap in 1..=k {
                let set: Vec<u32> = (0..k as u32).collect();
                let mut n = 0u64;
                for_each_subset(&set, cap, |_| n += 1);
                assert_eq!(n, subset_count(k, cap), "k={k} cap={cap}");
            }
        }
    }

    #[test]
    fn empty_set_yields_nothing() {
        let mut n = 0;
        for_each_subset(&[], 3, |_| n += 1);
        assert_eq!(n, 0);
    }
}
