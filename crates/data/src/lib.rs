//! # setlearn-data
//!
//! Set-collection data substrate for the `setlearn` reproduction of
//! *Learning over Sets for Databases* (EDBT 2024): the collection type and
//! its query oracles, dictionary encoding, synthetic generators matching the
//! paper's dataset shapes (Table 2), exhaustive subset statistics for
//! training-data creation (§7.1), negative sampling for the learned Bloom
//! filter (§7.1.2), query workloads (§8.1.1), and the digit-sum task of
//! Figure 7.

#![warn(missing_docs)]

pub mod collection;
pub mod dictionary;
pub mod digits;
pub mod generators;
pub mod io;
pub mod negative;
pub mod reorder;
pub mod set;
pub mod subsets;
pub mod workload;
pub mod zipf;

pub use collection::{CollectionStats, SetCollection};
pub use dictionary::Dictionary;
pub use generators::{Dataset, GeneratorConfig};
pub use set::{is_subset, normalize, ElementSet};
pub use subsets::{SubsetIndex, SubsetInfo};
pub use zipf::Zipf;
