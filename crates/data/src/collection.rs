//! The central data object: an ordered collection of sets.

use crate::set::{is_subset, normalize, ElementSet};
use serde::{Deserialize, Serialize};

/// An ordered collection `S = [X_1, ..., X_N]` of sets of element ids
/// (the paper's §1.1 problem statement). The collection may contain
/// duplicate sets; individual sets contain no duplicate elements.
///
/// ```
/// use setlearn_data::SetCollection;
///
/// // Figure 1's four tweets, dictionary-encoded.
/// let tweets = SetCollection::new(
///     vec![vec![0, 1, 2], vec![3, 4, 5], vec![0, 1, 3], vec![0, 1, 6]], 7);
/// assert_eq!(tweets.cardinality(&[0, 1]), 3);      // {#pizza, #dinner}
/// assert_eq!(tweets.first_position(&[3]), Some(1));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetCollection {
    sets: Vec<ElementSet>,
    num_elements: u32,
}

/// Summary statistics mirroring the paper's Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Number of sets in the collection.
    pub num_sets: usize,
    /// Number of distinct elements appearing in at least one set.
    pub unique_elements: usize,
    /// Largest single-element frequency — the maximum possible cardinality
    /// of any query (paper §4.2).
    pub max_cardinality: u64,
    /// Smallest set size.
    pub min_set_size: usize,
    /// Largest set size.
    pub max_set_size: usize,
}

impl SetCollection {
    /// Builds a collection from raw sets, canonicalizing each one.
    /// `num_elements` is the vocabulary bound; every id must be below it.
    ///
    /// # Panics
    /// If a set references an id `>= num_elements` or any set is empty.
    pub fn new(raw: Vec<Vec<u32>>, num_elements: u32) -> Self {
        let sets: Vec<ElementSet> = raw.into_iter().map(normalize).collect();
        for (i, s) in sets.iter().enumerate() {
            assert!(!s.is_empty(), "set {i} is empty after normalization");
            assert!(
                s.iter().all(|&e| e < num_elements),
                "set {i} references id >= vocabulary bound {num_elements}"
            );
        }
        SetCollection { sets, num_elements }
    }

    /// Number of sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Vocabulary bound (ids are `0..num_elements`).
    pub fn num_elements(&self) -> u32 {
        self.num_elements
    }

    /// The set at position `i`.
    pub fn get(&self, i: usize) -> &[u32] {
        &self.sets[i]
    }

    /// All sets in collection order.
    pub fn sets(&self) -> &[ElementSet] {
        &self.sets
    }

    /// Iterator over `(position, set)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32])> {
        self.sets.iter().enumerate().map(|(i, s)| (i, &**s))
    }

    /// Ground-truth cardinality of query `q`: the number of sets `q` is a
    /// subset of (linear scan; used for labels and test oracles).
    pub fn cardinality(&self, q: &[u32]) -> u64 {
        self.sets.iter().filter(|s| is_subset(q, s)).count() as u64
    }

    /// Ground-truth first position `i` with `q ⊆ S[i]`, if any.
    pub fn first_position(&self, q: &[u32]) -> Option<usize> {
        self.sets.iter().position(|s| is_subset(q, s))
    }

    /// Whether any set contains `q` (membership oracle).
    pub fn contains_subset(&self, q: &[u32]) -> bool {
        self.first_position(q).is_some()
    }

    /// Table 2-style statistics.
    pub fn stats(&self) -> CollectionStats {
        let mut freq = vec![0u64; self.num_elements as usize];
        let mut seen = vec![false; self.num_elements as usize];
        let mut min_size = usize::MAX;
        let mut max_size = 0usize;
        for s in &self.sets {
            min_size = min_size.min(s.len());
            max_size = max_size.max(s.len());
            for &e in s.iter() {
                freq[e as usize] += 1;
                seen[e as usize] = true;
            }
        }
        CollectionStats {
            num_sets: self.sets.len(),
            unique_elements: seen.iter().filter(|&&b| b).count(),
            max_cardinality: freq.iter().copied().max().unwrap_or(0),
            min_set_size: if self.sets.is_empty() { 0 } else { min_size },
            max_set_size: max_size,
        }
    }

    /// Approximate resident bytes of the stored sets (for competitor-memory
    /// comparisons).
    pub fn size_bytes(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.len() * std::mem::size_of::<u32>() + std::mem::size_of::<ElementSet>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SetCollection {
        // Figure 1's four hashtag sets, dictionary-encoded:
        // pizza=0 dinner=1 yummy=2 restaurant=3 bbq=4 steak=5 dessert=6
        SetCollection::new(
            vec![
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![0, 1, 3],
                vec![0, 1, 6],
            ],
            7,
        )
    }

    #[test]
    fn cardinality_matches_figure_1() {
        let c = sample();
        // Q = {pizza, dinner} appears in T1, T3, T4.
        assert_eq!(c.cardinality(&[0, 1]), 3);
        assert_eq!(c.cardinality(&[4]), 1);
        assert_eq!(c.cardinality(&[2, 6]), 0);
    }

    #[test]
    fn first_position_finds_earliest() {
        let c = sample();
        assert_eq!(c.first_position(&[0, 1]), Some(0));
        assert_eq!(c.first_position(&[3]), Some(1));
        assert_eq!(c.first_position(&[6]), Some(3));
        assert_eq!(c.first_position(&[2, 4]), None);
    }

    #[test]
    fn stats_table2_fields() {
        let c = sample();
        let st = c.stats();
        assert_eq!(st.num_sets, 4);
        assert_eq!(st.unique_elements, 7);
        assert_eq!(st.max_cardinality, 3); // pizza and dinner each appear 3x
        assert_eq!(st.min_set_size, 3);
        assert_eq!(st.max_set_size, 3);
    }

    #[test]
    fn duplicate_sets_are_allowed() {
        let c = SetCollection::new(vec![vec![1, 2], vec![1, 2]], 3);
        assert_eq!(c.cardinality(&[1, 2]), 2);
    }

    #[test]
    #[should_panic(expected = "empty after normalization")]
    fn empty_set_rejected() {
        let _ = SetCollection::new(vec![vec![]], 3);
    }

    #[test]
    #[should_panic(expected = "vocabulary bound")]
    fn out_of_vocab_rejected() {
        let _ = SetCollection::new(vec![vec![5]], 3);
    }
}
