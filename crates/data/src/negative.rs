//! Negative training data for the learned Bloom filter (paper §7.1.2).
//!
//! Negatives are combinations of *existing* elements whose co-occurrence is
//! absent from the collection. Generating the complete negative set is a
//! combinatorial explosion, so — like the paper — we sample up to a target
//! count, restricted to a maximum query size.

use crate::collection::SetCollection;
use crate::set::{normalize, ElementSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Samples up to `target` negative queries of size `2..=max_size` whose
/// elements all exist in the collection but never co-occur as a subset.
///
/// Returns fewer than `target` samples if the attempt budget is exhausted —
/// e.g. on tiny dense collections where almost every combination is present.
pub fn sample_negatives(
    collection: &SetCollection,
    target: usize,
    max_size: usize,
    seed: u64,
) -> Vec<ElementSet> {
    assert!(max_size >= 2, "size-1 negatives would be out-of-vocabulary");
    // Pool of elements that actually occur.
    let mut present = vec![false; collection.num_elements() as usize];
    for (_, s) in collection.iter() {
        for &e in s {
            present[e as usize] = true;
        }
    }
    let pool: Vec<u32> =
        (0..collection.num_elements()).filter(|&e| present[e as usize]).collect();
    if pool.len() < 2 {
        return Vec::new();
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<ElementSet> = Vec::with_capacity(target);
    let mut seen: HashSet<ElementSet> = HashSet::with_capacity(target);
    let budget = target.saturating_mul(64).max(1024);
    let mut attempts = 0usize;
    while out.len() < target && attempts < budget {
        attempts += 1;
        let size = rng.gen_range(2..=max_size.min(pool.len()));
        let mut ids = Vec::with_capacity(size);
        while ids.len() < size {
            let e = pool[rng.gen_range(0..pool.len())];
            if !ids.contains(&e) {
                ids.push(e);
            }
        }
        let q = normalize(ids);
        if seen.contains(&q) || collection.contains_subset(&q) {
            continue;
        }
        seen.insert(q.clone());
        out.push(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GeneratorConfig;

    #[test]
    fn negatives_are_absent_from_collection() {
        let c = GeneratorConfig::rw(2_000, 17).generate();
        let negs = sample_negatives(&c, 200, 4, 5);
        assert!(!negs.is_empty());
        for q in &negs {
            assert!(!c.contains_subset(q), "negative {q:?} present");
            assert!(q.len() >= 2 && q.len() <= 4);
        }
    }

    #[test]
    fn negatives_use_existing_elements() {
        let c = GeneratorConfig::rw(2_000, 17).generate();
        let mut present = vec![false; c.num_elements() as usize];
        for (_, s) in c.iter() {
            for &e in s {
                present[e as usize] = true;
            }
        }
        for q in sample_negatives(&c, 100, 3, 5) {
            assert!(q.iter().all(|&e| present[e as usize]));
        }
    }

    #[test]
    fn negatives_are_distinct() {
        let c = GeneratorConfig::rw(2_000, 3).generate();
        let negs = sample_negatives(&c, 300, 4, 9);
        let set: HashSet<_> = negs.iter().cloned().collect();
        assert_eq!(set.len(), negs.len());
    }

    #[test]
    fn dense_tiny_collection_yields_few_or_none() {
        // Vocabulary of 4 and every pair present: no size-2 negatives exist.
        let c = SetCollection::new(
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3]],
            4,
        );
        let negs = sample_negatives(&c, 50, 2, 7);
        assert!(negs.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = GeneratorConfig::rw(1_000, 8).generate();
        assert_eq!(
            sample_negatives(&c, 64, 4, 2),
            sample_negatives(&c, 64, 4, 2)
        );
    }
}
