//! Text import/export of set collections.
//!
//! The paper's real datasets arrive as text — hashtag lists from a Twitter
//! crawl, token sets from server logs. This module reads such files (one set
//! per line, whitespace- or comma-separated tokens), dictionary-encodes the
//! tokens, and writes them back, so the library can be pointed at real data
//! without custom glue.

use crate::collection::SetCollection;
use crate::dictionary::Dictionary;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Import errors.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A line produced no tokens (empty sets are not representable).
    EmptyLine {
        /// 1-based line number.
        line: usize,
    },
    /// The file contained no sets at all.
    EmptyFile,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::EmptyLine { line } => write!(f, "line {line} contains no tokens"),
            IoError::EmptyFile => write!(f, "no sets in input"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Options for text import.
#[derive(Debug, Clone)]
pub struct TextFormat {
    /// Token separators (any of these characters splits).
    pub separators: Vec<char>,
    /// Lines starting with this prefix are skipped (e.g. `#` headers) —
    /// checked before tokenization.
    pub comment_prefix: Option<String>,
    /// Skip (rather than error on) lines with no tokens.
    pub skip_empty_lines: bool,
}

impl Default for TextFormat {
    fn default() -> Self {
        TextFormat {
            separators: vec![' ', '\t', ','],
            comment_prefix: None,
            skip_empty_lines: true,
        }
    }
}

/// Reads a collection from a reader: one set per line, dictionary-encoding
/// every token. Returns the collection and the dictionary.
pub fn read_sets<R: Read>(
    reader: R,
    format: &TextFormat,
) -> Result<(SetCollection, Dictionary), IoError> {
    let mut dict = Dictionary::new();
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let buf = BufReader::new(reader);
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        if let Some(prefix) = &format.comment_prefix {
            if line.trim_start().starts_with(prefix.as_str()) {
                continue;
            }
        }
        let tokens: Vec<&str> = line
            .split(|c| format.separators.contains(&c))
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        if tokens.is_empty() {
            if format.skip_empty_lines {
                continue;
            }
            return Err(IoError::EmptyLine { line: i + 1 });
        }
        sets.push(tokens.iter().map(|t| dict.encode(t)).collect());
    }
    if sets.is_empty() {
        return Err(IoError::EmptyFile);
    }
    let vocab = dict.len() as u32;
    Ok((SetCollection::new(sets, vocab), dict))
}

/// Reads a collection from a file path.
pub fn read_sets_file(
    path: &Path,
    format: &TextFormat,
) -> Result<(SetCollection, Dictionary), IoError> {
    read_sets(std::fs::File::open(path)?, format)
}

/// Writes a collection back to text, one set per line, decoding ids through
/// the dictionary (ids without a dictionary entry print as `_<id>`).
pub fn write_sets<W: Write>(
    writer: W,
    collection: &SetCollection,
    dict: &Dictionary,
    separator: char,
) -> Result<(), IoError> {
    let mut out = BufWriter::new(writer);
    let mut line = String::new();
    for (_, set) in collection.iter() {
        line.clear();
        for (i, &e) in set.iter().enumerate() {
            if i > 0 {
                line.push(separator);
            }
            match dict.decode(e) {
                Some(tok) => line.push_str(tok),
                None => {
                    line.push('_');
                    line.push_str(&e.to_string());
                }
            }
        }
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_hashtag_lines() {
        let text = "#pizza #dinner #yummy\n#restaurant,#bbq,#steak\n#pizza #dinner\n";
        let (c, dict) = read_sets(text.as_bytes(), &TextFormat::default()).unwrap();
        assert_eq!(c.len(), 3);
        // pizza, dinner, yummy, restaurant, bbq, steak
        assert_eq!(dict.len(), 6);
        let pizza = dict.get("#pizza").unwrap();
        let dinner = dict.get("#dinner").unwrap();
        let mut q = vec![pizza, dinner];
        q.sort_unstable();
        assert_eq!(c.cardinality(&q), 2);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header line\n\na b\n# another\nc\n";
        let format = TextFormat {
            comment_prefix: Some("#".into()),
            ..TextFormat::default()
        };
        let (c, _) = read_sets(text.as_bytes(), &format).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn errors_on_empty_line_when_strict() {
        let format = TextFormat { skip_empty_lines: false, ..TextFormat::default() };
        let err = read_sets("a b\n\nc\n".as_bytes(), &format).unwrap_err();
        assert!(matches!(err, IoError::EmptyLine { line: 2 }));
    }

    #[test]
    fn errors_on_empty_file() {
        assert!(matches!(
            read_sets("".as_bytes(), &TextFormat::default()),
            Err(IoError::EmptyFile)
        ));
    }

    #[test]
    fn duplicate_tokens_in_a_line_collapse() {
        let (c, _) = read_sets("a a b\n".as_bytes(), &TextFormat::default()).unwrap();
        assert_eq!(c.get(0).len(), 2);
    }

    #[test]
    fn roundtrip_preserves_sets() {
        let text = "alpha beta\ngamma\nbeta alpha gamma\n";
        let (c, dict) = read_sets(text.as_bytes(), &TextFormat::default()).unwrap();
        let mut out = Vec::new();
        write_sets(&mut out, &c, &dict, ' ').unwrap();
        let (back, dict2) = read_sets(out.as_slice(), &TextFormat::default()).unwrap();
        assert_eq!(back.len(), c.len());
        for (i, set) in c.iter() {
            // Compare decoded token sets (ids may be permuted between dicts).
            let orig: std::collections::BTreeSet<&str> =
                set.iter().map(|&e| dict.decode(e).unwrap()).collect();
            let round: std::collections::BTreeSet<&str> =
                back.get(i).iter().map(|&e| dict2.decode(e).unwrap()).collect();
            assert_eq!(orig, round);
        }
    }
}
