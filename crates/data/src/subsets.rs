//! Training-data creation: exhaustive subset statistics (paper §7.1.1).
//!
//! For the regression tasks the model trains on subsets of the stored sets,
//! labeled with their cardinality or first index position. Following the
//! paper's observation that subsets above size six are already infrequent,
//! enumeration is capped by `max_subset_size`.

use crate::collection::SetCollection;
use crate::set::{for_each_subset, ElementSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics for one enumerated subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubsetInfo {
    /// Number of sets the subset occurs in.
    pub count: u64,
    /// First collection position containing the subset.
    pub first_pos: u32,
    /// Last collection position containing the subset.
    pub last_pos: u32,
}

/// Exhaustive subset → (cardinality, first position) statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubsetIndex {
    map: HashMap<ElementSet, SubsetInfo>,
    max_subset_size: usize,
}

impl SubsetIndex {
    /// Enumerates all subsets of every set in `collection` up to
    /// `max_subset_size` elements, accumulating counts and first positions.
    pub fn build(collection: &SetCollection, max_subset_size: usize) -> Self {
        assert!(max_subset_size >= 1, "max_subset_size must be >= 1");
        let mut map: HashMap<ElementSet, SubsetInfo> = HashMap::new();
        for (pos, set) in collection.iter() {
            for_each_subset(set, max_subset_size, |sub| {
                map.entry(sub.into())
                    .and_modify(|info| {
                        info.count += 1;
                        info.last_pos = pos as u32;
                    })
                    .or_insert(SubsetInfo {
                        count: 1,
                        first_pos: pos as u32,
                        last_pos: pos as u32,
                    });
            });
        }
        SubsetIndex { map, max_subset_size }
    }

    /// Number of distinct subsets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Enumeration cap this index was built with.
    pub fn max_subset_size(&self) -> usize {
        self.max_subset_size
    }

    /// Lookup of a canonical (sorted) query.
    pub fn get(&self, q: &[u32]) -> Option<SubsetInfo> {
        self.map.get(q).copied()
    }

    /// Iterates `(subset, info)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&ElementSet, &SubsetInfo)> {
        self.map.iter()
    }

    /// Training pairs for the cardinality task: `(subset, count)`, sorted by
    /// subset so downstream shuffling is reproducible across processes
    /// (std's HashMap iteration order is randomized per run).
    pub fn cardinality_pairs(&self) -> Vec<(ElementSet, f64)> {
        let mut pairs: Vec<(ElementSet, f64)> = self
            .map
            .iter()
            .map(|(s, info)| (s.clone(), info.count as f64))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        pairs
    }

    /// Training pairs for the index task: `(subset, first position)`,
    /// deterministically ordered (see [`SubsetIndex::cardinality_pairs`]).
    pub fn index_pairs(&self) -> Vec<(ElementSet, f64)> {
        let mut pairs: Vec<(ElementSet, f64)> = self
            .map
            .iter()
            .map(|(s, info)| (s.clone(), info.first_pos as f64))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        pairs
    }

    /// Training pairs targeting the *last* occurrence (paper §4.1 supports
    /// either endpoint), deterministically ordered.
    pub fn index_pairs_last(&self) -> Vec<(ElementSet, f64)> {
        let mut pairs: Vec<(ElementSet, f64)> = self
            .map
            .iter()
            .map(|(s, info)| (s.clone(), info.last_pos as f64))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        pairs
    }

    /// The largest observed cardinality (always attained by some single
    /// element — paper §4.2).
    pub fn max_cardinality(&self) -> u64 {
        self.map.values().map(|i| i.count).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SetCollection {
        SetCollection::new(
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![0, 1, 3], vec![0, 1, 6]],
            7,
        )
    }

    #[test]
    fn counts_match_brute_force() {
        let c = sample();
        let idx = SubsetIndex::build(&c, 3);
        for (sub, info) in idx.iter() {
            assert_eq!(info.count, c.cardinality(sub), "subset {sub:?}");
            assert_eq!(
                info.first_pos as usize,
                c.first_position(sub).unwrap(),
                "subset {sub:?}"
            );
        }
    }

    #[test]
    fn figure1_query() {
        let idx = SubsetIndex::build(&sample(), 3);
        let info = idx.get(&[0, 1]).unwrap();
        assert_eq!(info.count, 3);
        assert_eq!(info.first_pos, 0);
    }

    #[test]
    fn cap_limits_subset_size() {
        let idx = SubsetIndex::build(&sample(), 2);
        assert!(idx.get(&[0, 1, 2]).is_none());
        assert!(idx.get(&[0, 1]).is_some());
    }

    #[test]
    fn subset_count_totals() {
        // Each of the 4 size-3 sets yields 7 subsets at cap 3; overlaps merge.
        let idx = SubsetIndex::build(&sample(), 3);
        let mut distinct = std::collections::HashSet::new();
        for (_, set) in sample().iter() {
            crate::set::for_each_subset(set, 3, |s| {
                distinct.insert(s.to_vec());
            });
        }
        assert_eq!(idx.len(), distinct.len());
    }

    #[test]
    fn max_cardinality_is_single_element_frequency() {
        let idx = SubsetIndex::build(&sample(), 3);
        assert_eq!(idx.max_cardinality(), 3);
        assert_eq!(idx.max_cardinality(), sample().stats().max_cardinality);
    }

    #[test]
    fn pairs_have_consistent_lengths() {
        let idx = SubsetIndex::build(&sample(), 2);
        assert_eq!(idx.cardinality_pairs().len(), idx.len());
        assert_eq!(idx.index_pairs().len(), idx.len());
        assert_eq!(idx.index_pairs_last().len(), idx.len());
    }

    #[test]
    fn last_position_matches_brute_force() {
        let c = sample();
        let idx = SubsetIndex::build(&c, 3);
        // {0, 1} appears at positions 0, 2, 3 -> last is 3.
        let info = idx.get(&[0, 1]).unwrap();
        assert_eq!(info.last_pos, 3);
        // Singletons occurring once have first == last.
        let info = idx.get(&[4]).unwrap();
        assert_eq!(info.first_pos, info.last_pos);
        for (sub, info) in idx.iter() {
            let brute_last = (0..c.len())
                .rev()
                .find(|&i| crate::set::is_subset(sub, c.get(i)))
                .unwrap();
            assert_eq!(info.last_pos as usize, brute_last, "subset {sub:?}");
        }
    }
}
