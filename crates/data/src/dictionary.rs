//! String-to-id dictionary encoding.
//!
//! The paper's compression (Algorithm 1) requires set elements to be
//! represented as integers; this dictionary performs that mapping for
//! string-valued elements such as hashtags or log tokens.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bidirectional string ⇄ `u32` dictionary with insertion-ordered ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dictionary {
    to_id: HashMap<String, u32>,
    to_str: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `s`, inserting it if unseen.
    pub fn encode(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.to_id.get(s) {
            return id;
        }
        let id = self.to_str.len() as u32;
        self.to_id.insert(s.to_owned(), id);
        self.to_str.push(s.to_owned());
        id
    }

    /// Encodes a whole set of strings.
    pub fn encode_set<S: AsRef<str>>(&mut self, items: &[S]) -> Vec<u32> {
        items.iter().map(|s| self.encode(s.as_ref())).collect()
    }

    /// Looks up an existing id without inserting.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.to_id.get(s).copied()
    }

    /// Reverse lookup.
    pub fn decode(&self, id: u32) -> Option<&str> {
        self.to_str.get(id as usize).map(String::as_str)
    }

    /// Number of distinct strings seen.
    pub fn len(&self) -> usize {
        self.to_str.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.to_str.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode("#pizza");
        let b = d.encode("#dinner");
        assert_eq!(d.encode("#pizza"), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_inverts_encode() {
        let mut d = Dictionary::new();
        let id = d.encode("#bbq");
        assert_eq!(d.decode(id), Some("#bbq"));
        assert_eq!(d.decode(99), None);
    }

    #[test]
    fn encode_set_maps_each_item() {
        let mut d = Dictionary::new();
        let ids = d.encode_set(&["a", "b", "a"]);
        assert_eq!(ids, vec![0, 1, 0]);
    }

    #[test]
    fn get_does_not_insert() {
        let d = Dictionary::new();
        assert_eq!(d.get("missing"), None);
        assert!(d.is_empty());
    }
}
