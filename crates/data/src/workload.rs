//! Query workloads: subsets of stored sets "having both few and many
//! elements" (paper §8.1.1), plus mixed positive/negative membership
//! workloads for the Bloom-filter task.

use crate::collection::SetCollection;
use crate::negative::sample_negatives;
use crate::set::ElementSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `n` positive queries: random-size subsets of randomly chosen sets.
pub fn positive_queries(collection: &SetCollection, n: usize, seed: u64) -> Vec<ElementSet> {
    assert!(!collection.is_empty(), "cannot sample queries from an empty collection");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let set = collection.get(rng.gen_range(0..collection.len()));
        let size = rng.gen_range(1..=set.len());
        // Reservoir-free subset draw: shuffle indices and take a prefix of
        // the (already canonical) set, then re-sort.
        let mut picked: Vec<u32> = Vec::with_capacity(size);
        let mut indices: Vec<usize> = (0..set.len()).collect();
        for i in 0..size {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
            picked.push(set[indices[i]]);
        }
        picked.sort_unstable();
        out.push(picked.into_boxed_slice());
    }
    out
}

/// A labeled membership workload: `(query, exists_in_collection)`.
pub fn membership_queries(
    collection: &SetCollection,
    n_pos: usize,
    n_neg: usize,
    max_neg_size: usize,
    seed: u64,
) -> Vec<(ElementSet, bool)> {
    let mut out: Vec<(ElementSet, bool)> = Vec::with_capacity(n_pos + n_neg);
    for q in positive_queries(collection, n_pos, seed) {
        out.push((q, true));
    }
    for q in sample_negatives(collection, n_neg, max_neg_size, seed.wrapping_add(1)) {
        out.push((q, false));
    }
    // Deterministic interleave so batching sees both classes.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GeneratorConfig;

    #[test]
    fn positives_are_subsets_of_some_set() {
        let c = GeneratorConfig::rw(1_000, 4).generate();
        for q in positive_queries(&c, 200, 9) {
            assert!(c.contains_subset(&q), "query {q:?} not found");
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn positives_span_small_and_large_sizes() {
        let c = GeneratorConfig::rw(2_000, 4).generate();
        let qs = positive_queries(&c, 500, 10);
        let min = qs.iter().map(|q| q.len()).min().unwrap();
        let max = qs.iter().map(|q| q.len()).max().unwrap();
        assert_eq!(min, 1);
        assert!(max >= 5, "max query size {max}");
    }

    #[test]
    fn membership_labels_are_correct() {
        let c = GeneratorConfig::rw(1_000, 4).generate();
        let w = membership_queries(&c, 100, 100, 4, 21);
        assert!(w.iter().any(|(_, l)| *l));
        assert!(w.iter().any(|(_, l)| !*l));
        for (q, label) in &w {
            assert_eq!(c.contains_subset(q), *label);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let c = GeneratorConfig::sd(500, 1).generate();
        assert_eq!(positive_queries(&c, 50, 3), positive_queries(&c, 50, 3));
    }
}
