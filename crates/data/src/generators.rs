//! Synthetic generators for the paper's three dataset families.
//!
//! The RW (company server logs) and Tweets (Twitter crawl) datasets are
//! proprietary; these generators produce distribution-matched stand-ins
//! (see DESIGN.md §3): Zipf-skewed element frequencies, paper-matched set
//! size ranges, and vocabulary-to-collection-size ratios from Table 2.

use crate::collection::SetCollection;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a Zipf-element set-collection generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of sets to generate.
    pub num_sets: usize,
    /// Vocabulary size (element ids are `0..vocab`).
    pub vocab: u32,
    /// Zipf exponent for element popularity (0 = uniform).
    pub zipf_s: f64,
    /// Inclusive minimum set size.
    pub min_set_size: usize,
    /// Inclusive maximum set size.
    pub max_set_size: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl GeneratorConfig {
    /// RW-like server-log shape: sets of 2–8 diverse, rare elements
    /// (Table 2: 30k unique elements per 200k sets).
    pub fn rw(num_sets: usize, seed: u64) -> Self {
        GeneratorConfig {
            num_sets,
            vocab: ((num_sets as f64 * 0.15).ceil() as u32).max(16),
            zipf_s: 1.0,
            min_set_size: 2,
            max_set_size: 8,
            seed,
        }
    }

    /// Tweets-like hashtag shape: sizes 1 to >10, heavier Zipf skew
    /// (Table 2: 73k unique elements per 1.9M sets).
    pub fn tweets(num_sets: usize, seed: u64) -> Self {
        GeneratorConfig {
            num_sets,
            vocab: ((num_sets as f64 * 0.04).ceil() as u32).max(16),
            zipf_s: 1.1,
            min_set_size: 1,
            max_set_size: 12,
            seed,
        }
    }

    /// SD-like synthetic shape: few, frequently re-used elements and nearly
    /// constant set sizes 6–7 (Table 2: 5.6k unique per 100k sets).
    pub fn sd(num_sets: usize, seed: u64) -> Self {
        GeneratorConfig {
            num_sets,
            vocab: ((num_sets as f64 * 0.056).ceil() as u32).max(16),
            zipf_s: 0.4,
            min_set_size: 6,
            max_set_size: 7,
            seed,
        }
    }

    /// Generates a collection where elements co-occur in *correlated pairs*:
    /// with probability `pair_prob`, a set receives a whole pair `(2i, 2i+1)`
    /// instead of an independent element. Correlation is the classic failure
    /// mode of independence-assuming cardinality estimators, which the
    /// `abl_correlation` bench demonstrates.
    pub fn generate_correlated(&self, pair_prob: f64) -> SetCollection {
        assert!((0.0..=1.0).contains(&pair_prob), "pair_prob must be a probability");
        assert!(self.vocab >= 4, "need at least two pairs");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.vocab as usize / 2, self.zipf_s);
        let mut sets = Vec::with_capacity(self.num_sets);
        let mut scratch: Vec<u32> = Vec::new();
        for _ in 0..self.num_sets {
            let size = rng.gen_range(self.min_set_size..=self.max_set_size);
            scratch.clear();
            let mut attempts = 0;
            while scratch.len() < size {
                attempts += 1;
                if attempts > 64 * size {
                    for cand in 0..self.vocab {
                        if scratch.len() >= size {
                            break;
                        }
                        if !scratch.contains(&cand) {
                            scratch.push(cand);
                        }
                    }
                    break;
                }
                let pair = zipf.sample(&mut rng) as u32;
                let (a, b) = (2 * pair, 2 * pair + 1);
                if rng.gen_bool(pair_prob) && scratch.len() + 2 <= size {
                    if !scratch.contains(&a) && !scratch.contains(&b) {
                        scratch.push(a);
                        scratch.push(b);
                    }
                } else {
                    let e = if rng.gen_bool(0.5) { a } else { b };
                    if !scratch.contains(&e) {
                        scratch.push(e);
                    }
                }
            }
            sets.push(scratch.clone());
        }
        SetCollection::new(sets, self.vocab)
    }

    /// Generates the collection.
    ///
    /// # Panics
    /// If the size range is invalid or exceeds the vocabulary.
    pub fn generate(&self) -> SetCollection {
        assert!(self.min_set_size >= 1, "sets must be non-empty");
        assert!(self.min_set_size <= self.max_set_size, "invalid size range");
        assert!(
            self.max_set_size <= self.vocab as usize,
            "set size cannot exceed vocabulary"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.vocab as usize, self.zipf_s);
        let mut sets = Vec::with_capacity(self.num_sets);
        let mut scratch: Vec<u32> = Vec::new();
        for _ in 0..self.num_sets {
            let size = rng.gen_range(self.min_set_size..=self.max_set_size);
            scratch.clear();
            // Rejection-sample distinct elements. With Zipf skew the head
            // elements collide often; bail into sequential fill if the
            // vocabulary is tight.
            let mut attempts = 0;
            while scratch.len() < size {
                let e = zipf.sample(&mut rng) as u32;
                if !scratch.contains(&e) {
                    scratch.push(e);
                }
                attempts += 1;
                if attempts > 64 * size {
                    // Degenerate vocabulary (e.g. tests with vocab ~= size):
                    // fill deterministically with unused smallest ids.
                    for cand in 0..self.vocab {
                        if scratch.len() >= size {
                            break;
                        }
                        if !scratch.contains(&cand) {
                            scratch.push(cand);
                        }
                    }
                }
            }
            sets.push(scratch.clone());
        }
        SetCollection::new(sets, self.vocab)
    }
}

/// The five evaluation datasets of Table 2, scaled by `scale` ∈ (0, 1].
///
/// `scale = 1.0` reproduces the paper's collection sizes; the default
/// benchmark harness uses a smaller scale so the full suite runs on a
/// laptop-class CPU (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// RW with 200k sets at full scale.
    Rw200k,
    /// RW with 1.5M sets at full scale.
    Rw1500k,
    /// RW with 3M sets at full scale.
    Rw3000k,
    /// Tweets with 1.9M sets at full scale.
    Tweets,
    /// SD with 100k sets at full scale.
    Sd,
}

impl Dataset {
    /// All five datasets in the paper's presentation order.
    pub const ALL: [Dataset; 5] =
        [Dataset::Rw200k, Dataset::Rw1500k, Dataset::Rw3000k, Dataset::Tweets, Dataset::Sd];

    /// The paper's label for the dataset.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Rw200k => "RW-200k",
            Dataset::Rw1500k => "RW-1.5M",
            Dataset::Rw3000k => "RW-3M",
            Dataset::Tweets => "Tweets",
            Dataset::Sd => "SD",
        }
    }

    /// Full-scale number of sets (Table 2).
    pub fn paper_num_sets(&self) -> usize {
        match self {
            Dataset::Rw200k => 200_000,
            Dataset::Rw1500k => 1_500_000,
            Dataset::Rw3000k => 3_000_000,
            Dataset::Tweets => 1_900_000,
            Dataset::Sd => 100_000,
        }
    }

    /// Generator configuration at the given scale.
    pub fn config(&self, scale: f64, seed: u64) -> GeneratorConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.paper_num_sets() as f64 * scale).round() as usize).max(64);
        match self {
            Dataset::Rw200k | Dataset::Rw1500k | Dataset::Rw3000k => {
                GeneratorConfig::rw(n, seed)
            }
            Dataset::Tweets => GeneratorConfig::tweets(n, seed),
            Dataset::Sd => GeneratorConfig::sd(n, seed),
        }
    }

    /// Generates the collection at the given scale.
    pub fn generate(&self, scale: f64, seed: u64) -> SetCollection {
        self.config(scale, seed).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_shape_matches_table2() {
        let c = GeneratorConfig::rw(5_000, 42).generate();
        let st = c.stats();
        assert_eq!(st.num_sets, 5_000);
        assert_eq!(st.min_set_size, 2);
        assert_eq!(st.max_set_size, 8);
        // Diverse vocabulary: a decent share of vocab used.
        assert!(st.unique_elements > 500, "unique={}", st.unique_elements);
    }

    #[test]
    fn tweets_has_variable_sizes_including_singletons() {
        let c = GeneratorConfig::tweets(5_000, 7).generate();
        let st = c.stats();
        assert_eq!(st.min_set_size, 1);
        assert!(st.max_set_size > 10);
    }

    #[test]
    fn sd_sizes_six_to_seven_and_small_vocab() {
        let c = GeneratorConfig::sd(5_000, 9).generate();
        let st = c.stats();
        assert!(st.min_set_size >= 6 && st.max_set_size <= 7);
        // Small vocabulary => elements recur very often.
        assert!(st.max_cardinality > 500, "max card {}", st.max_cardinality);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GeneratorConfig::rw(500, 5).generate();
        let b = GeneratorConfig::rw(500, 5).generate();
        assert_eq!(a.sets(), b.sets());
        let c = GeneratorConfig::rw(500, 6).generate();
        assert_ne!(a.sets(), c.sets());
    }

    #[test]
    fn zipf_skew_produces_rare_elements() {
        // Most elements should be infrequent (paper §7.1.1).
        let c = GeneratorConfig::rw(10_000, 3).generate();
        let mut freq = vec![0u32; c.num_elements() as usize];
        for (_, s) in c.iter() {
            for &e in s {
                freq[e as usize] += 1;
            }
        }
        let used = freq.iter().filter(|&&f| f > 0).count();
        // "Small number of sets": at this scale (~50k element draws over a
        // ~1.5k vocabulary) the Zipf tail puts ~45% of used elements at
        // frequency <= 8 while head elements appear thousands of times.
        let rare = freq.iter().filter(|&&f| f > 0 && f <= 8).count();
        assert!(
            rare as f64 > used as f64 * 0.35,
            "expected a heavy tail: rare={rare} used={used}"
        );
        let head = freq.iter().copied().max().unwrap();
        assert!(head > 1_000, "expected a dominant head, max freq {head}");
    }

    #[test]
    fn dataset_presets_generate() {
        for d in Dataset::ALL {
            let c = d.generate(0.002, 11);
            assert!(c.len() >= 64, "{} too small", d.name());
        }
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn invalid_scale_panics() {
        let _ = Dataset::Sd.config(0.0, 1);
    }
}
