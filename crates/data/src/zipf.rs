//! Zipf-distributed sampling over a finite vocabulary.
//!
//! The paper's real-world datasets are heavy-tailed — "hashtag frequency
//! distribution follows Zipf's law" (§7.1.1) — so the synthetic stand-ins
//! sample elements from a Zipf(s) distribution via an inverse-CDF table.

use rand::rngs::StdRng;
use rand::Rng;

/// Inverse-CDF Zipf sampler over ranks `0..n` with exponent `s`.
///
/// Rank `k` (0-based) has probability proportional to `1 / (k+1)^s`.
///
/// ```
/// use rand::SeedableRng;
/// use setlearn_data::Zipf;
///
/// let zipf = Zipf::new(1_000, 1.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n` must be positive; `s >= 0` (0 = uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf > u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_large() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate rank 10 by roughly 11^1.5 ≈ 36x.
        assert!(counts[0] > counts[10] * 10, "rank0={} rank10={}", counts[0], counts[10]);
        // All samples in range.
        assert_eq!(counts.iter().sum::<usize>(), 50_000);
    }

    #[test]
    fn single_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
