//! The digit-sum generalization task of Figure 7 (from the original
//! DeepSets paper): sets of numbers labeled with their sum.
//!
//! Training sets contain up to `max_train_size` numbers drawn from
//! `[1, max_value]`; test sets contain exactly `m` numbers, with `m` pushed
//! far beyond the training sizes to probe length generalization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labeled example: multiset of values (ids `1..=max_value`) and their sum.
#[derive(Debug, Clone, PartialEq)]
pub struct SumExample {
    /// The numbers in the set (order irrelevant; duplicates allowed, as in
    /// the original experiment).
    pub values: Vec<u32>,
    /// Sum of the values.
    pub label: f64,
}

/// Generates `n` training examples with sizes `1..=max_train_size`.
pub fn training_sets(
    n: usize,
    max_train_size: usize,
    max_value: u32,
    seed: u64,
) -> Vec<SumExample> {
    assert!(max_value >= 1 && max_train_size >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let size = rng.gen_range(1..=max_train_size);
            let values: Vec<u32> = (0..size).map(|_| rng.gen_range(1..=max_value)).collect();
            let label = values.iter().map(|&v| v as f64).sum();
            SumExample { values, label }
        })
        .collect()
}

/// Generates `n` test examples of exactly `m` numbers each.
pub fn test_sets(n: usize, m: usize, max_value: u32, seed: u64) -> Vec<SumExample> {
    assert!(max_value >= 1 && m >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let values: Vec<u32> = (0..m).map(|_| rng.gen_range(1..=max_value)).collect();
            let label = values.iter().map(|&v| v as f64).sum();
            SumExample { values, label }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_sums() {
        for ex in training_sets(100, 10, 10, 3) {
            assert_eq!(ex.label, ex.values.iter().map(|&v| v as f64).sum::<f64>());
            assert!(ex.values.iter().all(|&v| (1..=10).contains(&v)));
            assert!(!ex.values.is_empty() && ex.values.len() <= 10);
        }
    }

    #[test]
    fn test_sets_have_exact_size() {
        for ex in test_sets(50, 37, 10, 4) {
            assert_eq!(ex.values.len(), 37);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(training_sets(10, 5, 10, 1), training_sets(10, 5, 10, 1));
        assert_ne!(training_sets(10, 5, 10, 1), training_sets(10, 5, 10, 2));
    }
}
