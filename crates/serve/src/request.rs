//! Per-request tracing context: a trace id plus a per-[`Stage`] latency
//! breakdown, threaded from frame decode through admission, the bounded
//! queue, batch assembly, `serve_batch`, sharded fan-out, and response
//! encode.
//!
//! The context is shared (`Arc`) between the connection handler and the
//! worker(s) answering the request; stage slots are atomics written with a
//! max so the sharded fan-out path reports the *slowest* shard's queue wait
//! and inference time — the one that bounded the request's latency.

use setlearn_obs::{Stage, StageBreakdown, STAGES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tracing context for one in-flight request.
#[derive(Debug)]
pub struct RequestCtx {
    /// Trace id: client-supplied (propagated from the query frame) or
    /// server-minted at frame decode.
    pub trace_id: u64,
    /// When the request's frame finished decoding.
    pub received_at: Instant,
    stages: [AtomicU64; setlearn_obs::STAGE_COUNT],
}

/// Monotonic source for server-minted trace ids. Odd ids are server-minted
/// (the counter starts at 1 and steps by 2) so they can never collide with
/// a client that derives its ids from an even sequence — and collisions
/// with arbitrary client ids remain the client's choice to avoid.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

impl RequestCtx {
    /// Context carrying a client-supplied trace id.
    pub fn with_trace_id(trace_id: u64) -> Arc<RequestCtx> {
        Arc::new(RequestCtx {
            trace_id,
            received_at: Instant::now(),
            stages: Default::default(),
        })
    }

    /// Context with a fresh server-minted (odd) trace id.
    pub fn mint() -> Arc<RequestCtx> {
        Self::with_trace_id(NEXT_TRACE_ID.fetch_add(2, Ordering::Relaxed))
    }

    /// Records time spent in `stage`, keeping the maximum across repeated
    /// records (per-shard observations of the same stage under fan-out).
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.stages[stage as usize].fetch_max(us, Ordering::Relaxed);
    }

    /// Microseconds recorded for one stage.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.stages[stage as usize].load(Ordering::Relaxed)
    }

    /// Copies the recorded stages into a serializable breakdown.
    pub fn breakdown(&self) -> StageBreakdown {
        let mut out = StageBreakdown::default();
        for stage in STAGES {
            out.set(stage, self.stage_us(stage));
        }
        out
    }

    /// Microseconds since the frame finished decoding.
    pub fn total_us(&self) -> u64 {
        self.received_at.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_odd_and_unique() {
        let a = RequestCtx::mint();
        let b = RequestCtx::mint();
        assert_eq!(a.trace_id % 2, 1);
        assert_eq!(b.trace_id % 2, 1);
        assert_ne!(a.trace_id, b.trace_id);
    }

    #[test]
    fn stage_records_keep_the_maximum() {
        let ctx = RequestCtx::with_trace_id(42);
        assert_eq!(ctx.trace_id, 42);
        ctx.record_stage(Stage::QueueWait, Duration::from_micros(300));
        ctx.record_stage(Stage::QueueWait, Duration::from_micros(100));
        ctx.record_stage(Stage::Inference, Duration::from_micros(50));
        assert_eq!(ctx.stage_us(Stage::QueueWait), 300);
        let b = ctx.breakdown();
        assert_eq!(b.queue_us, 300);
        assert_eq!(b.inference_us, 50);
        assert_eq!(b.decode_us, 0);
    }
}
