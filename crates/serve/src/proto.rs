//! `SLP1` — the versioned, length-prefixed binary wire protocol of the TCP
//! front-end.
//!
//! ## Frame layout (little-endian, 22-byte header + payload)
//!
//! ```text
//! magic   "SLP1"        4 bytes   protocol identity
//! version u8            1 byte    protocol revision (currently 1)
//! kind    u8            1 byte    task kind or control kind (see below)
//! id      u64           8 bytes   request id, echoed verbatim in responses
//! len     u32           4 bytes   payload length in bytes
//! crc32   u32           4 bytes   CRC-32 (IEEE) over the payload
//! payload len bytes
//! ```
//!
//! Kinds `0..=2` are the [`WireTask`] codes (a query frame); `0xF0` is ping
//! and `0xF1` is a shutdown request. The CRC covers the payload exactly like
//! the `SLW2` weight format, so truncation and bit flips surface as typed
//! [`ProtoError`]s instead of garbage queries.
//!
//! ## Version 2: collection addressing
//!
//! A v2 frame is byte-identical to v1 except the version byte is `2` and
//! the payload *opens* with a length-prefixed collection id (`u8` length,
//! then that many `[A-Za-z0-9_-]` bytes; length 0 = the server's default
//! collection). The CRC covers the collection field together with the rest
//! of the payload, so a flipped bit in the id surfaces as
//! [`ProtoError::BadCrc`] before routing. Responses echo the request's
//! version and collection. v1 frames remain fully decodable and route to
//! the default collection, preserving pre-v2 clients bit-for-bit.
//!
//! ## Payloads
//!
//! A **request** payload is a query batch: `u32` count, then that many
//! [`QueryRequest`] bodies. A **response** payload opens with one status
//! byte: `0` means the batch was decoded and each query gets its own
//! `status` byte (`0` + a [`QueryResponse`] body, or a nonzero
//! [`ErrorCode`] — so a shed query is distinguishable from a panicked one
//! *per query*); a nonzero frame status is a frame-level [`ErrorCode`] and
//! ends the payload. Control frames (ping/shutdown) carry empty payloads
//! and are answered with an empty payload of the same kind.
//!
//! Versioning: the magic pins the protocol family, the version byte the
//! revision. A server refuses frames whose version it does not speak with
//! [`ErrorCode::UnsupportedVersion`] (see `DESIGN.md` §11 for the
//! compatibility story).

use crate::error::ServeError;
use setlearn::persist::crc32;
use setlearn::wire::{QueryRequest, QueryResponse, WireDecodeError, WireTask};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic: `SLP1`.
pub const MAGIC: [u8; 4] = *b"SLP1";
/// Original protocol version: no collection addressing; frames route to
/// the server's default collection.
pub const VERSION: u8 = 1;
/// Protocol version 2: every payload opens with a length-prefixed
/// collection id (see the module docs).
pub const VERSION_V2: u8 = 2;
/// Header bytes before the payload.
pub const HEADER_LEN: usize = 22;
/// Frame kind: ingest — one durable insert/delete against a mutable
/// collection. Answered with an [`IngestAck`] payload after the WAL fsync.
pub const KIND_INGEST: u8 = 0x10;
/// Frame kind: stats scrape — returns the server's live metrics snapshot
/// (Prometheus text or JSON) or its slow-query log, per the request's
/// [`StatsFormat`] byte. Kinds `0xE0..=0xEF` are the admin space; an admin
/// kind a server does not implement is refused with
/// [`ErrorCode::AdminUnsupported`] (not `BadFrame`), so newer clients can
/// probe older servers safely.
pub const KIND_STATS: u8 = 0xE0;
/// Frame kind: health probe — returns a readiness verdict
/// ([`HealthReport`]: drain state, queue saturation, WAL truncations,
/// compactor lag, model version).
pub const KIND_HEALTH: u8 = 0xE1;
/// Frame kind: list the registry's collections ([`CollectionInfo`] rows).
/// Registry servers only; single-collection servers refuse with
/// [`ErrorCode::AdminUnsupported`].
pub const KIND_COLLECTIONS: u8 = 0xE2;
/// Frame kind: attach a collection by name — the server validates its
/// directory under the collections root and registers it (the checkpoint
/// still loads lazily on first query).
pub const KIND_ATTACH: u8 = 0xE3;
/// Frame kind: detach a collection by name — evicts it and stops routing
/// to it. Refused with [`ErrorCode::IngestRejected`] while the collection
/// has pending WAL ops or an in-flight compaction.
pub const KIND_DETACH: u8 = 0xE4;
/// First byte of the admin kind space (`0xE0..=0xEF`).
pub const ADMIN_KIND_MIN: u8 = 0xE0;
/// Last byte of the admin kind space (`0xE0..=0xEF`).
pub const ADMIN_KIND_MAX: u8 = 0xEF;
/// Frame kind: ping (liveness / readiness probe).
pub const KIND_PING: u8 = 0xF0;
/// Frame kind: graceful-shutdown request (honored only when the server was
/// started with remote shutdown allowed).
pub const KIND_SHUTDOWN: u8 = 0xF1;
/// Default cap on payload bytes; larger frames are refused with
/// [`ProtoError::FrameTooLarge`] before any allocation happens.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 << 20;
/// Largest query batch a single frame may carry.
pub const MAX_BATCH_PER_FRAME: usize = 1 << 16;

/// Typed protocol failure. `Io` is transport trouble; everything else means
/// the peer sent bytes that are not a well-formed `SLP1` frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Reading or writing the socket failed.
    Io(io::Error),
    /// The first four bytes were not `SLP1`.
    BadMagic([u8; 4]),
    /// The version byte names a revision this side does not speak.
    UnsupportedVersion(u8),
    /// The declared payload length exceeds the configured cap.
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// Configured cap.
        max: usize,
    },
    /// The payload failed its CRC-32 check.
    BadCrc {
        /// CRC declared in the header.
        declared: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// The payload did not decode as the declared kind's body.
    BadPayload(WireDecodeError),
    /// The kind byte is neither a task code nor a control kind.
    UnknownKind(u8),
    /// The peer answered with a frame-level error code.
    Remote(ErrorCode),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io error: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad magic {m:02x?} (want \"SLP1\")"),
            ProtoError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (speak {VERSION} and {VERSION_V2})")
            }
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::BadCrc { declared, actual } => {
                write!(f, "payload crc mismatch: header says {declared:#010x}, got {actual:#010x}")
            }
            ProtoError::BadPayload(e) => write!(f, "bad payload: {e}"),
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            ProtoError::Remote(code) => write!(f, "peer refused the frame: {code}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<WireDecodeError> for ProtoError {
    fn from(e: WireDecodeError) -> Self {
        ProtoError::BadPayload(e)
    }
}

/// Error codes carried in response status bytes. Codes 1–15 are the
/// [`ServeError`] codes (runtime outcomes); 16+ are protocol-level refusals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A [`ServeError`] produced by the runtime (shed, drain, panic, lost).
    Serve(ServeError),
    /// The frame addressed a task this server is not serving.
    TaskMismatch,
    /// The frame (or its payload) failed structural validation.
    BadFrame,
    /// The declared payload length exceeded the server's cap.
    FrameTooLarge,
    /// The version byte named a revision the server does not speak.
    UnsupportedVersion,
    /// A shutdown frame arrived but remote shutdown is not allowed.
    ShutdownNotAllowed,
    /// An ingest frame arrived but this server serves an immutable model
    /// (no `--wal-dir`).
    IngestUnsupported,
    /// The mutation was rejected before logging (empty set, out-of-vocab
    /// element) — nothing was made durable.
    IngestRejected,
    /// The durability layer failed; the mutation was **not** acknowledged.
    IngestFailed,
    /// An admin frame (kind `0xE0..=0xEF`) the server does not implement.
    /// Distinct from [`ErrorCode::BadFrame`] so probing a newer admin kind
    /// against an older server is a typed refusal, not stream corruption.
    AdminUnsupported,
    /// The frame addressed a collection this server does not host (or a
    /// v2 collection id was sent to a single-collection server).
    UnknownCollection,
    /// The collection's per-tenant admission quota is exhausted. Distinct
    /// from [`ServeError::Overloaded`] (global queue shed): *this* tenant
    /// is over its budget while the server may be otherwise idle.
    TenantOverloaded,
    /// The collection exists but its checkpoint is still loading (another
    /// request triggered the lazy load). Retry shortly.
    CollectionLoading,
}

impl ErrorCode {
    /// The stable wire byte.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::Serve(e) => e.code(),
            ErrorCode::TaskMismatch => 16,
            ErrorCode::BadFrame => 17,
            ErrorCode::FrameTooLarge => 18,
            ErrorCode::UnsupportedVersion => 19,
            ErrorCode::ShutdownNotAllowed => 20,
            ErrorCode::IngestUnsupported => 21,
            ErrorCode::IngestRejected => 22,
            ErrorCode::IngestFailed => 23,
            ErrorCode::AdminUnsupported => 24,
            ErrorCode::UnknownCollection => 25,
            ErrorCode::TenantOverloaded => 26,
            ErrorCode::CollectionLoading => 27,
        }
    }

    /// Decodes a nonzero status byte; unknown codes map to [`ErrorCode::BadFrame`]
    /// is *not* done — they return `None` so new codes fail loudly.
    pub fn from_code(code: u8) -> Option<ErrorCode> {
        if let Some(serve) = ServeError::from_code(code) {
            return Some(ErrorCode::Serve(serve));
        }
        match code {
            16 => Some(ErrorCode::TaskMismatch),
            17 => Some(ErrorCode::BadFrame),
            18 => Some(ErrorCode::FrameTooLarge),
            19 => Some(ErrorCode::UnsupportedVersion),
            20 => Some(ErrorCode::ShutdownNotAllowed),
            21 => Some(ErrorCode::IngestUnsupported),
            22 => Some(ErrorCode::IngestRejected),
            23 => Some(ErrorCode::IngestFailed),
            24 => Some(ErrorCode::AdminUnsupported),
            25 => Some(ErrorCode::UnknownCollection),
            26 => Some(ErrorCode::TenantOverloaded),
            27 => Some(ErrorCode::CollectionLoading),
            _ => None,
        }
    }

    /// Stable snake_case label (the `code` label on protocol-error metrics).
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Serve(e) => e.label(),
            ErrorCode::TaskMismatch => "task_mismatch",
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::ShutdownNotAllowed => "shutdown_not_allowed",
            ErrorCode::IngestUnsupported => "ingest_unsupported",
            ErrorCode::IngestRejected => "ingest_rejected",
            ErrorCode::IngestFailed => "ingest_failed",
            ErrorCode::AdminUnsupported => "admin_unsupported",
            ErrorCode::UnknownCollection => "unknown_collection",
            ErrorCode::TenantOverloaded => "tenant_overloaded",
            ErrorCode::CollectionLoading => "collection_loading",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::Serve(e) => write!(f, "{e}"),
            other => f.write_str(other.label()),
        }
    }
}

/// One decoded frame: version, kind byte, request id, collection address
/// (v2 only), raw payload (CRC-verified, collection field stripped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version the frame arrived as ([`VERSION`] or
    /// [`VERSION_V2`]). Responders echo it.
    pub version: u8,
    /// Task code (`0..=2`) or control kind (`0xF0` ping, `0xF1` shutdown).
    pub kind: u8,
    /// Request id, echoed verbatim by the responder.
    pub id: u64,
    /// The collection the frame addresses. `None` for v1 frames and for
    /// v2 frames with a zero-length id — both mean the default collection.
    pub collection: Option<String>,
    /// CRC-verified payload bytes (v2: after the collection field).
    pub payload: Vec<u8>,
}

impl Frame {
    /// The task this frame addresses, if its kind byte is a task code.
    pub fn task(&self) -> Option<WireTask> {
        WireTask::from_code(self.kind)
    }
}

/// Serializes one v1 frame (header + payload) into a fresh buffer. Kept
/// byte-for-byte identical to the pre-v2 encoding: everything a v1-only
/// client sends goes through here.
pub fn encode_frame(kind: u8, id: u64, payload: &[u8]) -> Vec<u8> {
    encode_frame_with(VERSION, kind, id, payload)
}

/// Serializes one v2 frame: the payload is prefixed with the
/// length-prefixed collection id (`None` or `Some("")` → length 0, the
/// default collection) and the CRC covers both.
pub fn encode_frame_v2(kind: u8, id: u64, collection: Option<&str>, payload: &[u8]) -> Vec<u8> {
    let name = collection.unwrap_or("");
    let mut full = Vec::with_capacity(1 + name.len() + payload.len());
    setlearn::wire::encode_collection_id(&mut full, name);
    full.extend_from_slice(payload);
    encode_frame_with(VERSION_V2, kind, id, &full)
}

fn encode_frame_with(version: u8, kind: u8, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.push(kind);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Re-encodes a frame in the same version (and, for v2, to the same
/// collection) as `request` — the server's way of answering a client in
/// the dialect it spoke.
pub fn encode_frame_echoing(request: &Frame, kind: u8, payload: &[u8]) -> Vec<u8> {
    if request.version == VERSION_V2 {
        encode_frame_v2(kind, request.id, request.collection.as_deref(), payload)
    } else {
        encode_frame(kind, request.id, payload)
    }
}

/// Writes one v1 frame to `w` (single `write_all`, so small frames are one
/// syscall with a buffered writer). Returns the bytes written.
pub fn write_frame(w: &mut impl Write, kind: u8, id: u64, payload: &[u8]) -> io::Result<usize> {
    let bytes = encode_frame(kind, id, payload);
    w.write_all(&bytes)?;
    Ok(bytes.len())
}

/// Reads exactly one frame from `r`, verifying magic, version, size cap and
/// CRC. The version check happens *before* the length is trusted, and the
/// length check before anything is allocated, so a hostile peer cannot make
/// the server allocate unbounded memory or misparse a future revision.
/// Speaks [`VERSION`] and [`VERSION_V2`]; a v2 frame's collection field is
/// validated and stripped here, so a malformed id is
/// [`ProtoError::BadPayload`] (or [`ProtoError::BadCrc`] if bits flipped),
/// never a misparse of the body.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Frame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = header[0..4].try_into().expect("fixed slice");
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = header[4];
    if version != VERSION && version != VERSION_V2 {
        return Err(ProtoError::UnsupportedVersion(version));
    }
    let kind = header[5];
    let id = u64::from_le_bytes(header[6..14].try_into().expect("fixed slice"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("fixed slice")) as usize;
    let declared = u32::from_le_bytes(header[18..22].try_into().expect("fixed slice"));
    if len > max_payload {
        return Err(ProtoError::FrameTooLarge { len, max: max_payload });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let actual = crc32(&payload);
    if actual != declared {
        return Err(ProtoError::BadCrc { declared, actual });
    }
    let collection = if version == VERSION_V2 {
        let mut rest = payload.as_slice();
        let collection = setlearn::wire::decode_collection_id(&mut rest)?;
        payload = rest.to_vec();
        collection
    } else {
        None
    };
    Ok(Frame { version, kind, id, collection, payload })
}

// ---------------------------------------------------------------------------
// Request / response payload bodies
// ---------------------------------------------------------------------------

/// Encodes a query batch into a request payload.
pub fn encode_request_batch(queries: &[QueryRequest]) -> Vec<u8> {
    encode_request_batch_traced(queries, None)
}

/// Encodes a query batch with an optional client-supplied trace id.
///
/// The id rides as 8 extra little-endian bytes *after* the batch — absent
/// entirely when `None`, so default clients stay byte-identical to the
/// pre-tracing encoding (and keep working against servers that reject
/// trailing bytes). Suppliers of a trace id need a server new enough to
/// understand the extension.
pub fn encode_request_batch_traced(queries: &[QueryRequest], trace_id: Option<u64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + queries.len() * 16 + 8);
    out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    for q in queries {
        q.encode(&mut out);
    }
    if let Some(id) = trace_id {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

/// Decodes a request payload into its query batch plus the optional
/// client-supplied trace id (exactly 8 trailing bytes after the batch; zero
/// trailing bytes means no id; any other remainder is trailing garbage).
pub fn decode_request_batch(
    mut payload: &[u8],
) -> Result<(Vec<QueryRequest>, Option<u64>), ProtoError> {
    let count = take_count(&mut payload, "batch")?;
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        queries.push(QueryRequest::decode(&mut payload)?);
    }
    let trace_id = if payload.len() == 8 {
        let id = u64::from_le_bytes(payload.try_into().expect("checked length"));
        payload = &payload[8..];
        Some(id)
    } else {
        None
    };
    expect_consumed(payload)?;
    Ok((queries, trace_id))
}

/// Per-query outcome inside an OK response frame.
pub type WireOutcome = Result<QueryResponse, ErrorCode>;

/// Encodes an OK response payload: frame status 0, then one status byte (and
/// body on success) per query.
pub fn encode_response_batch(outcomes: &[WireOutcome]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + outcomes.len() * 16);
    out.push(0);
    out.extend_from_slice(&(outcomes.len() as u32).to_le_bytes());
    for outcome in outcomes {
        match outcome {
            Ok(response) => {
                out.push(0);
                response.encode(&mut out);
            }
            Err(code) => out.push(code.code()),
        }
    }
    out
}

/// Encodes a frame-level error response payload.
pub fn encode_error_response(code: ErrorCode) -> Vec<u8> {
    vec![code.code()]
}

/// Decodes a response payload: either the per-query outcomes or the
/// frame-level error, surfaced as [`ProtoError::Remote`].
pub fn decode_response_batch(mut payload: &[u8]) -> Result<Vec<WireOutcome>, ProtoError> {
    let status = take_status(&mut payload)?;
    if status != 0 {
        let code = ErrorCode::from_code(status)
            .ok_or(ProtoError::BadPayload(WireDecodeError::BadTag {
                what: "frame status",
                tag: status,
            }))?;
        return Err(ProtoError::Remote(code));
    }
    let count = take_count(&mut payload, "batch")?;
    let mut outcomes = Vec::with_capacity(count);
    for _ in 0..count {
        let status = take_status(&mut payload)?;
        if status == 0 {
            outcomes.push(Ok(QueryResponse::decode(&mut payload)?));
        } else {
            let code = ErrorCode::from_code(status).ok_or(ProtoError::BadPayload(
                WireDecodeError::BadTag { what: "query status", tag: status },
            ))?;
            outcomes.push(Err(code));
        }
    }
    expect_consumed(payload)?;
    Ok(outcomes)
}

// ---------------------------------------------------------------------------
// Ingest payload bodies (kind 0x10)
// ---------------------------------------------------------------------------

/// One durable mutation: `op u8` (0 insert, 1 delete), `count u32`, then
/// `count × u32` element ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestRequest {
    /// `true` deletes one occurrence; `false` inserts.
    pub delete: bool,
    /// Raw element ids (the server canonicalizes).
    pub elements: Vec<u32>,
}

/// Encodes an ingest request payload.
pub fn encode_ingest_request(request: &IngestRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + request.elements.len() * 4);
    out.push(u8::from(request.delete));
    out.extend_from_slice(&(request.elements.len() as u32).to_le_bytes());
    for &id in &request.elements {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

/// Decodes an ingest request payload.
pub fn decode_ingest_request(mut payload: &[u8]) -> Result<IngestRequest, ProtoError> {
    let op = take_status(&mut payload)?;
    let delete = match op {
        0 => false,
        1 => true,
        tag => {
            return Err(ProtoError::BadPayload(WireDecodeError::BadTag { what: "ingest op", tag }))
        }
    };
    let count = take_count(&mut payload, "ingest set")?;
    if payload.len() != count * 4 {
        return Err(ProtoError::BadPayload(WireDecodeError::Truncated));
    }
    let elements = payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
        .collect();
    Ok(IngestRequest { delete, elements })
}

/// Acknowledgement of a durable mutation: the record is fsync'd in the
/// server's WAL before this is sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAck {
    /// WAL sequence the mutation committed at.
    pub seq: u64,
    /// Whether it changed the logical collection (`false` for a delete
    /// with no remaining occurrence).
    pub applied: bool,
}

/// Encodes an OK ingest response payload: status 0, `applied u8`, `seq u64`.
pub fn encode_ingest_ack(ack: IngestAck) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    out.push(0);
    out.push(u8::from(ack.applied));
    out.extend_from_slice(&ack.seq.to_le_bytes());
    out
}

/// Decodes an ingest response payload; a nonzero status surfaces as
/// [`ProtoError::Remote`].
pub fn decode_ingest_ack(mut payload: &[u8]) -> Result<IngestAck, ProtoError> {
    let status = take_status(&mut payload)?;
    if status != 0 {
        let code = ErrorCode::from_code(status).ok_or(ProtoError::BadPayload(
            WireDecodeError::BadTag { what: "ingest status", tag: status },
        ))?;
        return Err(ProtoError::Remote(code));
    }
    let applied = match take_status(&mut payload)? {
        0 => false,
        1 => true,
        tag => {
            return Err(ProtoError::BadPayload(WireDecodeError::BadTag {
                what: "ingest applied flag",
                tag,
            }))
        }
    };
    if payload.len() != 8 {
        return Err(ProtoError::BadPayload(WireDecodeError::Truncated));
    }
    let seq = u64::from_le_bytes(payload.try_into().expect("checked length"));
    Ok(IngestAck { seq, applied })
}

// ---------------------------------------------------------------------------
// Admin payload bodies (kinds 0xE0 stats, 0xE1 health)
// ---------------------------------------------------------------------------

/// What a stats frame asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsFormat {
    /// Prometheus text exposition of the live metrics registry.
    #[default]
    Prometheus,
    /// JSON [`setlearn_obs::RegistrySnapshot`] of the live registry.
    Json,
    /// The slow-query ring as JSONL, oldest record first.
    SlowQueries,
}

impl StatsFormat {
    /// Stable wire byte.
    pub fn code(self) -> u8 {
        match self {
            StatsFormat::Prometheus => 0,
            StatsFormat::Json => 1,
            StatsFormat::SlowQueries => 2,
        }
    }

    /// Decodes the wire byte.
    pub fn from_code(code: u8) -> Option<StatsFormat> {
        match code {
            0 => Some(StatsFormat::Prometheus),
            1 => Some(StatsFormat::Json),
            2 => Some(StatsFormat::SlowQueries),
            _ => None,
        }
    }
}

/// Encodes a stats request payload: one format byte.
pub fn encode_stats_request(format: StatsFormat) -> Vec<u8> {
    vec![format.code()]
}

/// Decodes a stats request payload.
pub fn decode_stats_request(mut payload: &[u8]) -> Result<StatsFormat, ProtoError> {
    let code = take_status(&mut payload)?;
    let format = StatsFormat::from_code(code)
        .ok_or(ProtoError::BadPayload(WireDecodeError::BadTag { what: "stats format", tag: code }))?;
    expect_consumed(payload)?;
    Ok(format)
}

/// Encodes an OK stats response payload: status 0, `u32` byte length, then
/// the UTF-8 text (Prometheus exposition, JSON snapshot, or JSONL).
pub fn encode_stats_reply(text: &str) -> Vec<u8> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(5 + bytes.len());
    out.push(0);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Decodes a stats response payload; a nonzero status surfaces as
/// [`ProtoError::Remote`].
pub fn decode_stats_reply(mut payload: &[u8]) -> Result<String, ProtoError> {
    let status = take_status(&mut payload)?;
    if status != 0 {
        let code = ErrorCode::from_code(status).ok_or(ProtoError::BadPayload(
            WireDecodeError::BadTag { what: "stats status", tag: status },
        ))?;
        return Err(ProtoError::Remote(code));
    }
    if payload.len() < 4 {
        return Err(ProtoError::BadPayload(WireDecodeError::Truncated));
    }
    let (head, rest) = payload.split_at(4);
    let len = u32::from_le_bytes(head.try_into().expect("split_at(4)")) as usize;
    if rest.len() != len {
        return Err(ProtoError::BadPayload(WireDecodeError::Truncated));
    }
    String::from_utf8(rest.to_vec()).map_err(|_| {
        ProtoError::BadPayload(WireDecodeError::BadTag { what: "stats utf8", tag: 0 })
    })
}

// ---------------------------------------------------------------------------
// Collection admin bodies (kinds 0xE2 list, 0xE3 attach, 0xE4 detach)
// ---------------------------------------------------------------------------

/// One registry row in a [`KIND_COLLECTIONS`] reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionInfo {
    /// Collection id.
    pub name: String,
    /// Task it serves.
    pub task: WireTask,
    /// Whether its runtime is currently resident (loaded) vs. cold.
    pub resident: bool,
    /// WAL ops awaiting compaction (0 for immutable or cold collections).
    pub pending_ops: u64,
    /// The registry's resident-size estimate in bytes.
    pub disk_bytes: u64,
}

/// Encodes an OK collections-list reply: status 0, `u32` count, then per
/// collection the length-prefixed name, task code, resident flag, pending
/// ops and byte size.
pub fn encode_collections_reply(rows: &[CollectionInfo]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + rows.len() * 32);
    out.push(0);
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        setlearn::wire::encode_collection_id(&mut out, &row.name);
        out.push(row.task.code());
        out.push(u8::from(row.resident));
        out.extend_from_slice(&row.pending_ops.to_le_bytes());
        out.extend_from_slice(&row.disk_bytes.to_le_bytes());
    }
    out
}

/// Decodes a collections-list reply; a nonzero status surfaces as
/// [`ProtoError::Remote`].
pub fn decode_collections_reply(mut payload: &[u8]) -> Result<Vec<CollectionInfo>, ProtoError> {
    let status = take_status(&mut payload)?;
    if status != 0 {
        let code = ErrorCode::from_code(status).ok_or(ProtoError::BadPayload(
            WireDecodeError::BadTag { what: "collections status", tag: status },
        ))?;
        return Err(ProtoError::Remote(code));
    }
    let count = take_count(&mut payload, "collections")?;
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let name = setlearn::wire::decode_collection_id(&mut payload)?.ok_or(
            ProtoError::BadPayload(WireDecodeError::BadLength { what: "collection name", len: 0 }),
        )?;
        let code = take_status(&mut payload)?;
        let task = WireTask::from_code(code)
            .ok_or(ProtoError::BadPayload(WireDecodeError::BadTag { what: "task", tag: code }))?;
        let resident = take_bool(&mut payload, "resident flag")?;
        let pending_ops = take_u64(&mut payload)?;
        let disk_bytes = take_u64(&mut payload)?;
        rows.push(CollectionInfo { name, task, resident, pending_ops, disk_bytes });
    }
    expect_consumed(payload)?;
    Ok(rows)
}

/// Encodes an attach/detach request body: just the length-prefixed name.
pub fn encode_collection_name(name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + name.len());
    setlearn::wire::encode_collection_id(&mut out, name);
    out
}

/// Decodes an attach/detach request body.
pub fn decode_collection_name(mut payload: &[u8]) -> Result<String, ProtoError> {
    let name = setlearn::wire::decode_collection_id(&mut payload)?.ok_or(
        ProtoError::BadPayload(WireDecodeError::BadLength { what: "collection name", len: 0 }),
    )?;
    expect_consumed(payload)?;
    Ok(name)
}

/// Decodes an attach/detach acknowledgement: an empty-bodied status-0
/// payload, or a frame-level error surfaced as [`ProtoError::Remote`].
pub fn decode_admin_ack(mut payload: &[u8]) -> Result<(), ProtoError> {
    let status = take_status(&mut payload)?;
    if status != 0 {
        let code = ErrorCode::from_code(status).ok_or(ProtoError::BadPayload(
            WireDecodeError::BadTag { what: "admin status", tag: status },
        ))?;
        return Err(ProtoError::Remote(code));
    }
    expect_consumed(payload)?;
    Ok(())
}

/// The server's readiness verdict, answered to a health frame.
///
/// `ready` is the verdict (fail a load-balancer check on `false`); the rest
/// are the evidence. Verdict rules live with the server (see `DESIGN.md`
/// §13): draining or a saturated admission queue mean not ready; WAL
/// truncations and compactor lag are reported as reasons but do not by
/// themselves flip readiness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Overall verdict: safe to route new traffic here.
    pub ready: bool,
    /// A graceful drain is in progress (shutdown requested, still answering).
    pub draining: bool,
    /// Requests buffered in the admission queue(s), summed across shards.
    pub queue_depth: u64,
    /// Total admission queue capacity, summed across shards.
    pub queue_capacity: u64,
    /// Shards behind this server (1 when unsharded).
    pub shards: u32,
    /// WAL tail truncations observed at recovery (process lifetime).
    pub wal_truncations: u64,
    /// Mutations in the delta overlay awaiting compaction (0 when immutable).
    pub compactor_pending: u64,
    /// Hot-swap version of the served model (0 = never swapped).
    pub model_version: u64,
    /// Human-readable degradation reasons, empty when fully healthy.
    pub reasons: Vec<String>,
    /// Collections currently resident in the registry (1 for a
    /// single-collection server; 0 when the peer predates this field).
    pub resident_collections: u32,
    /// Per-collection pending-ingest depth (WAL ops awaiting compaction),
    /// resident collections only. Empty when the peer predates this field.
    pub collection_pending: Vec<(String, u64)>,
}

/// Encodes an OK health response payload in the v1 body layout — without
/// the tenant-state extension — for byte-compatibility with pre-v2
/// clients.
pub fn encode_health_report(report: &HealthReport) -> Vec<u8> {
    encode_health_body(report, false)
}

/// Encodes an OK health response payload including the tenant-state
/// extension (resident-collection count, per-collection pending ingest).
/// Sent to v2 clients.
pub fn encode_health_report_v2(report: &HealthReport) -> Vec<u8> {
    encode_health_body(report, true)
}

fn encode_health_body(report: &HealthReport, extended: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(0);
    out.push(u8::from(report.ready));
    out.push(u8::from(report.draining));
    out.extend_from_slice(&report.queue_depth.to_le_bytes());
    out.extend_from_slice(&report.queue_capacity.to_le_bytes());
    out.extend_from_slice(&report.shards.to_le_bytes());
    out.extend_from_slice(&report.wal_truncations.to_le_bytes());
    out.extend_from_slice(&report.compactor_pending.to_le_bytes());
    out.extend_from_slice(&report.model_version.to_le_bytes());
    out.extend_from_slice(&(report.reasons.len() as u32).to_le_bytes());
    for reason in &report.reasons {
        let bytes = reason.as_bytes();
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    if extended {
        out.extend_from_slice(&report.resident_collections.to_le_bytes());
        out.extend_from_slice(&(report.collection_pending.len() as u32).to_le_bytes());
        for (name, pending) in &report.collection_pending {
            setlearn::wire::encode_collection_id(&mut out, name);
            out.extend_from_slice(&pending.to_le_bytes());
        }
    }
    out
}

fn take_bool(payload: &mut &[u8], what: &'static str) -> Result<bool, ProtoError> {
    match take_status(payload)? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(ProtoError::BadPayload(WireDecodeError::BadTag { what, tag })),
    }
}

fn take_u64(payload: &mut &[u8]) -> Result<u64, ProtoError> {
    if payload.len() < 8 {
        return Err(ProtoError::BadPayload(WireDecodeError::Truncated));
    }
    let (head, rest) = payload.split_at(8);
    *payload = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("split_at(8)")))
}

/// Decodes a health response payload; a nonzero status surfaces as
/// [`ProtoError::Remote`].
pub fn decode_health_report(mut payload: &[u8]) -> Result<HealthReport, ProtoError> {
    let status = take_status(&mut payload)?;
    if status != 0 {
        let code = ErrorCode::from_code(status).ok_or(ProtoError::BadPayload(
            WireDecodeError::BadTag { what: "health status", tag: status },
        ))?;
        return Err(ProtoError::Remote(code));
    }
    let ready = take_bool(&mut payload, "health ready flag")?;
    let draining = take_bool(&mut payload, "health draining flag")?;
    let queue_depth = take_u64(&mut payload)?;
    let queue_capacity = take_u64(&mut payload)?;
    let shards = take_count(&mut payload, "health shards")? as u32;
    let wal_truncations = take_u64(&mut payload)?;
    let compactor_pending = take_u64(&mut payload)?;
    let model_version = take_u64(&mut payload)?;
    let reason_count = take_count(&mut payload, "health reasons")?;
    let mut reasons = Vec::with_capacity(reason_count);
    for _ in 0..reason_count {
        let len = take_count(&mut payload, "health reason")?;
        if payload.len() < len {
            return Err(ProtoError::BadPayload(WireDecodeError::Truncated));
        }
        let (head, rest) = payload.split_at(len);
        payload = rest;
        reasons.push(String::from_utf8(head.to_vec()).map_err(|_| {
            ProtoError::BadPayload(WireDecodeError::BadTag { what: "health reason utf8", tag: 0 })
        })?);
    }
    // Tenant-state extension: absent entirely in a v1 body (old server),
    // present in full after the reasons otherwise.
    let (resident_collections, collection_pending) = if payload.is_empty() {
        (0, Vec::new())
    } else {
        let resident = take_count(&mut payload, "resident collections")? as u32;
        let count = take_count(&mut payload, "collection pending")?;
        let mut pending = Vec::with_capacity(count);
        for _ in 0..count {
            let name = setlearn::wire::decode_collection_id(&mut payload)?.ok_or(
                ProtoError::BadPayload(WireDecodeError::BadLength {
                    what: "collection name",
                    len: 0,
                }),
            )?;
            pending.push((name, take_u64(&mut payload)?));
        }
        (resident, pending)
    };
    expect_consumed(payload)?;
    Ok(HealthReport {
        ready,
        draining,
        queue_depth,
        queue_capacity,
        shards,
        wal_truncations,
        compactor_pending,
        model_version,
        reasons,
        resident_collections,
        collection_pending,
    })
}

fn take_status(payload: &mut &[u8]) -> Result<u8, ProtoError> {
    let (&status, rest) =
        payload.split_first().ok_or(ProtoError::BadPayload(WireDecodeError::Truncated))?;
    *payload = rest;
    Ok(status)
}

fn take_count(payload: &mut &[u8], what: &'static str) -> Result<usize, ProtoError> {
    if payload.len() < 4 {
        return Err(ProtoError::BadPayload(WireDecodeError::Truncated));
    }
    let (head, rest) = payload.split_at(4);
    *payload = rest;
    let count = u32::from_le_bytes(head.try_into().expect("split_at(4)")) as usize;
    if count > MAX_BATCH_PER_FRAME {
        return Err(ProtoError::BadPayload(WireDecodeError::BadLength { what, len: count }));
    }
    Ok(count)
}

fn expect_consumed(payload: &[u8]) -> Result<(), ProtoError> {
    if payload.is_empty() {
        Ok(())
    } else {
        // Trailing garbage means the frame lied about its structure.
        Err(ProtoError::BadPayload(WireDecodeError::BadLength {
            what: "trailing bytes",
            len: payload.len(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn::tasks::QueryOutcome;

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let payload = encode_request_batch(&[
            QueryRequest::new(vec![1, 2, 3]),
            QueryRequest::new(vec![]),
            QueryRequest::new(vec![u32::MAX]),
        ]);
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, WireTask::Bloom.code(), 77, &payload).unwrap();
        assert_eq!(n, buf.len());
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(frame.kind, WireTask::Bloom.code());
        assert_eq!(frame.task(), Some(WireTask::Bloom));
        assert_eq!(frame.id, 77);
        let (queries, trace_id) = decode_request_batch(&frame.payload).unwrap();
        assert_eq!(queries.len(), 3);
        assert_eq!(queries[0].elements, vec![1, 2, 3]);
        assert_eq!(trace_id, None);
    }

    #[test]
    fn trace_id_rides_as_optional_trailing_bytes() {
        let queries = vec![QueryRequest::new(vec![1, 2]), QueryRequest::new(vec![3])];
        // Without an id the traced encoding is byte-identical to the plain one.
        assert_eq!(encode_request_batch_traced(&queries, None), encode_request_batch(&queries));
        let payload = encode_request_batch_traced(&queries, Some(0xDEAD_BEEF_CAFE_F00D));
        let (back, trace_id) = decode_request_batch(&payload).unwrap();
        assert_eq!(back, queries);
        assert_eq!(trace_id, Some(0xDEAD_BEEF_CAFE_F00D));
        // A remainder that is not exactly 0 or 8 bytes is still garbage.
        let mut ragged = encode_request_batch(&queries);
        ragged.extend_from_slice(&[1, 2, 3]);
        assert!(decode_request_batch(&ragged).is_err());
    }

    #[test]
    fn stats_payloads_roundtrip() {
        for format in [StatsFormat::Prometheus, StatsFormat::Json, StatsFormat::SlowQueries] {
            let payload = encode_stats_request(format);
            assert_eq!(decode_stats_request(&payload).unwrap(), format);
        }
        assert!(decode_stats_request(&[9]).is_err());
        assert!(decode_stats_request(&[0, 0]).is_err());

        let text = "setlearn_serve_completed_total 5\n";
        let reply = encode_stats_reply(text);
        assert_eq!(decode_stats_reply(&reply).unwrap(), text);
        assert_eq!(decode_stats_reply(&encode_stats_reply("")).unwrap(), "");
        // Remote refusal surfaces typed.
        match decode_stats_reply(&encode_error_response(ErrorCode::AdminUnsupported)) {
            Err(ProtoError::Remote(ErrorCode::AdminUnsupported)) => {}
            other => panic!("expected remote admin_unsupported, got {other:?}"),
        }
        // Truncated length prefix / short body are typed errors.
        assert!(decode_stats_reply(&[0, 5, 0]).is_err());
        assert!(decode_stats_reply(&[0, 5, 0, 0, 0, b'a']).is_err());
    }

    #[test]
    fn health_payloads_roundtrip() {
        let report = HealthReport {
            ready: false,
            draining: true,
            queue_depth: 12,
            queue_capacity: 1024,
            shards: 4,
            wal_truncations: 1,
            compactor_pending: 37,
            model_version: 9,
            reasons: vec!["draining".to_string(), "compactor lag: 37 pending ops".to_string()],
            resident_collections: 2,
            collection_pending: vec![("tenant-a".to_string(), 37), ("tenant-b".to_string(), 0)],
        };
        // The v2 body carries the tenant-state extension through intact.
        let payload = encode_health_report_v2(&report);
        assert_eq!(decode_health_report(&payload).unwrap(), report);
        // The v1 body drops it; decoding yields the "not reported" defaults.
        let v1_payload = encode_health_report(&report);
        assert!(v1_payload.len() < payload.len());
        let via_v1 = decode_health_report(&v1_payload).unwrap();
        assert_eq!(via_v1.resident_collections, 0);
        assert!(via_v1.collection_pending.is_empty());
        assert_eq!(via_v1.queue_depth, report.queue_depth);
        assert_eq!(via_v1.reasons, report.reasons);

        let healthy = HealthReport {
            ready: true,
            draining: false,
            queue_depth: 0,
            queue_capacity: 1024,
            shards: 1,
            wal_truncations: 0,
            compactor_pending: 0,
            model_version: 0,
            reasons: vec![],
            resident_collections: 1,
            collection_pending: vec![],
        };
        let payload = encode_health_report_v2(&healthy);
        assert_eq!(decode_health_report(&payload).unwrap(), healthy);

        match decode_health_report(&encode_error_response(ErrorCode::AdminUnsupported)) {
            Err(ProtoError::Remote(ErrorCode::AdminUnsupported)) => {}
            other => panic!("expected remote admin_unsupported, got {other:?}"),
        }
        // Truncation anywhere is a typed error or a lenient v1-body parse,
        // never a panic. (Cuts that land exactly at the end of the reasons
        // list *are* a valid v1 body — those decode with defaulted
        // extension fields rather than erroring.)
        let v1_len = encode_health_report(&healthy).len();
        let payload = encode_health_report_v2(&report);
        for cut in 0..payload.len() {
            match decode_health_report(&payload[..cut]) {
                Err(_) => {}
                Ok(r) => {
                    assert_eq!(r.resident_collections, 0, "cut {cut} parsed as v1 body");
                    assert!(cut >= v1_len, "cut {cut} too short for any valid body");
                }
            }
        }
    }

    #[test]
    fn collection_admin_payloads_roundtrip() {
        let rows = vec![
            CollectionInfo {
                name: "tenant-a".to_string(),
                task: WireTask::Cardinality,
                resident: true,
                pending_ops: 12,
                disk_bytes: 4096,
            },
            CollectionInfo {
                name: "tenant-b".to_string(),
                task: WireTask::Bloom,
                resident: false,
                pending_ops: 0,
                disk_bytes: 99,
            },
        ];
        let payload = encode_collections_reply(&rows);
        assert_eq!(decode_collections_reply(&payload).unwrap(), rows);
        assert_eq!(decode_collections_reply(&encode_collections_reply(&[])).unwrap(), vec![]);
        for cut in 1..payload.len() {
            assert!(decode_collections_reply(&payload[..cut]).is_err(), "cut {cut}");
        }
        match decode_collections_reply(&encode_error_response(ErrorCode::AdminUnsupported)) {
            Err(ProtoError::Remote(ErrorCode::AdminUnsupported)) => {}
            other => panic!("expected remote admin_unsupported, got {other:?}"),
        }

        let name_payload = encode_collection_name("tenant-a");
        assert_eq!(decode_collection_name(&name_payload).unwrap(), "tenant-a");
        assert!(decode_collection_name(&[0]).is_err(), "empty name rejected");
        assert!(decode_collection_name(&[]).is_err());

        assert_eq!(decode_admin_ack(&[0]).unwrap(), ());
        match decode_admin_ack(&encode_error_response(ErrorCode::UnknownCollection)) {
            Err(ProtoError::Remote(ErrorCode::UnknownCollection)) => {}
            other => panic!("expected remote unknown_collection, got {other:?}"),
        }
    }

    #[test]
    fn v2_frames_carry_a_collection_and_v1_frames_stay_identical() {
        let payload = encode_request_batch(&[QueryRequest::new(vec![1, 2, 3])]);
        // A v1 frame decodes with no collection and version 1.
        let v1 = encode_frame(0, 7, &payload);
        let frame = read_frame(&mut v1.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(frame.version, VERSION);
        assert_eq!(frame.collection, None);
        assert_eq!(frame.payload, payload);
        // A v2 frame round-trips its collection id and strips it from the
        // payload the caller sees.
        let v2 = encode_frame_v2(0, 7, Some("tenant-a"), &payload);
        let frame = read_frame(&mut v2.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(frame.version, VERSION_V2);
        assert_eq!(frame.collection.as_deref(), Some("tenant-a"));
        assert_eq!(frame.payload, payload);
        // Empty-id v2 frames mean "default collection".
        let v2_default = encode_frame_v2(0, 7, None, &payload);
        let frame = read_frame(&mut v2_default.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(frame.version, VERSION_V2);
        assert_eq!(frame.collection, None);
        assert_eq!(frame.payload, payload);
        // Echoing re-encodes in the request's dialect.
        let req = read_frame(&mut v2.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(encode_frame_echoing(&req, 0, &payload), v2);
        let req = read_frame(&mut v1.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(encode_frame_echoing(&req, 0, &payload), v1);
    }

    #[test]
    fn corrupted_v2_collection_fields_fail_typed() {
        let payload = encode_request_batch(&[QueryRequest::new(vec![9])]);
        let good = encode_frame_v2(0, 1, Some("tenant-a"), &payload);
        // Any flipped bit in the collection field trips the CRC.
        for pos in HEADER_LEN..HEADER_LEN + 9 {
            let mut bad = good.clone();
            bad[pos] ^= 0x04;
            assert!(matches!(
                read_frame(&mut bad.as_slice(), DEFAULT_MAX_FRAME_BYTES),
                Err(ProtoError::BadCrc { .. })
            ));
        }
        // A CRC-consistent but over-long declared id length is BadPayload.
        let mut over = Vec::new();
        over.push(200u8); // declared id length > MAX_COLLECTION_ID_LEN
        over.extend_from_slice(&payload);
        let framed = encode_frame_with(VERSION_V2, 0, 1, &over);
        assert!(matches!(
            read_frame(&mut framed.as_slice(), DEFAULT_MAX_FRAME_BYTES),
            Err(ProtoError::BadPayload(WireDecodeError::BadLength { .. }))
        ));
        // A CRC-consistent id that overruns the payload is truncation.
        let truncated = encode_frame_with(VERSION_V2, 0, 1, &[5, b'a', b'b']);
        assert!(matches!(
            read_frame(&mut truncated.as_slice(), DEFAULT_MAX_FRAME_BYTES),
            Err(ProtoError::BadPayload(WireDecodeError::Truncated))
        ));
        // An id with bytes outside the alphabet is rejected.
        let mut spaced = Vec::new();
        spaced.extend_from_slice(&[3, b'a', b' ', b'b']);
        spaced.extend_from_slice(&payload);
        let framed = encode_frame_with(VERSION_V2, 0, 1, &spaced);
        assert!(matches!(
            read_frame(&mut framed.as_slice(), DEFAULT_MAX_FRAME_BYTES),
            Err(ProtoError::BadPayload(WireDecodeError::BadTag { .. }))
        ));
        // Truncating the stream anywhere is Io(UnexpectedEof), not a panic.
        for cut in 0..good.len() {
            match read_frame(&mut good[..cut].as_ref(), DEFAULT_MAX_FRAME_BYTES) {
                Err(ProtoError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}")
                }
                other => panic!("cut {cut}: expected eof, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_frames_are_rejected_typed() {
        let payload = encode_request_batch(&[QueryRequest::new(vec![9])]);
        let good = encode_frame(0, 1, &payload);

        // Flipped payload bit → BadCrc.
        let mut flipped = good.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            read_frame(&mut flipped.as_slice(), DEFAULT_MAX_FRAME_BYTES),
            Err(ProtoError::BadCrc { .. })
        ));

        // Wrong magic.
        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(matches!(
            read_frame(&mut magic.as_slice(), DEFAULT_MAX_FRAME_BYTES),
            Err(ProtoError::BadMagic(_))
        ));

        // Future version.
        let mut version = good.clone();
        version[4] = 9;
        assert!(matches!(
            read_frame(&mut version.as_slice(), DEFAULT_MAX_FRAME_BYTES),
            Err(ProtoError::UnsupportedVersion(9))
        ));

        // Oversized declared payload is refused before allocation.
        assert!(matches!(
            read_frame(&mut good.as_slice(), 4),
            Err(ProtoError::FrameTooLarge { max: 4, .. })
        ));

        // Truncation anywhere → Io(UnexpectedEof), never a panic.
        for cut in 0..good.len() {
            match read_frame(&mut good[..cut].as_ref(), DEFAULT_MAX_FRAME_BYTES) {
                Err(ProtoError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}")
                }
                other => panic!("cut {cut}: expected eof, got {other:?}"),
            }
        }
    }

    #[test]
    fn response_batches_mix_values_and_typed_errors() {
        let outcomes: Vec<WireOutcome> = vec![
            Ok(QueryOutcome::clean(12.5f64).into()),
            Err(ErrorCode::Serve(ServeError::Overloaded)),
            Ok(QueryOutcome::clean(Some(3usize)).into()),
            Err(ErrorCode::Serve(ServeError::TaskPanicked)),
            Ok(QueryOutcome::clean(true).into()),
        ];
        let payload = encode_response_batch(&outcomes);
        let back = decode_response_batch(&payload).unwrap();
        assert_eq!(back, outcomes);
    }

    #[test]
    fn frame_level_errors_surface_as_remote() {
        let payload = encode_error_response(ErrorCode::TaskMismatch);
        match decode_response_batch(&payload) {
            Err(ProtoError::Remote(ErrorCode::TaskMismatch)) => {}
            other => panic!("expected remote task mismatch, got {other:?}"),
        }
        // Serve errors round-trip distinguishably.
        for serve in [ServeError::Overloaded, ServeError::WorkerLost, ServeError::TaskPanicked] {
            let payload = encode_error_response(ErrorCode::Serve(serve));
            match decode_response_batch(&payload) {
                Err(ProtoError::Remote(ErrorCode::Serve(e))) => assert_eq!(e, serve),
                other => panic!("expected {serve:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = encode_response_batch(&[Ok(QueryOutcome::clean(1.0f64).into())]);
        payload.push(0xAA);
        assert!(matches!(
            decode_response_batch(&payload),
            Err(ProtoError::BadPayload(WireDecodeError::BadLength { .. }))
        ));
    }

    #[test]
    fn error_code_bytes_are_stable() {
        assert_eq!(ErrorCode::Serve(ServeError::Overloaded).code(), 1);
        assert_eq!(ErrorCode::TaskMismatch.code(), 16);
        assert_eq!(ErrorCode::BadFrame.code(), 17);
        assert_eq!(ErrorCode::FrameTooLarge.code(), 18);
        assert_eq!(ErrorCode::UnsupportedVersion.code(), 19);
        assert_eq!(ErrorCode::ShutdownNotAllowed.code(), 20);
        assert_eq!(ErrorCode::IngestUnsupported.code(), 21);
        assert_eq!(ErrorCode::IngestRejected.code(), 22);
        assert_eq!(ErrorCode::IngestFailed.code(), 23);
        assert_eq!(ErrorCode::AdminUnsupported.code(), 24);
        assert_eq!(ErrorCode::UnknownCollection.code(), 25);
        assert_eq!(ErrorCode::TenantOverloaded.code(), 26);
        assert_eq!(ErrorCode::CollectionLoading.code(), 27);
        for code in 1..=27u8 {
            if let Some(decoded) = ErrorCode::from_code(code) {
                assert_eq!(decoded.code(), code);
            }
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(200), None);
    }

    #[test]
    fn ingest_payloads_roundtrip() {
        for request in [
            IngestRequest { delete: false, elements: vec![3, 1, 2] },
            IngestRequest { delete: true, elements: vec![] },
        ] {
            let payload = encode_ingest_request(&request);
            assert_eq!(decode_ingest_request(&payload).unwrap(), request);
        }
        for ack in [
            IngestAck { seq: 0, applied: true },
            IngestAck { seq: u64::MAX, applied: false },
        ] {
            assert_eq!(decode_ingest_ack(&encode_ingest_ack(ack)).unwrap(), ack);
        }
        // Remote refusal surfaces typed.
        match decode_ingest_ack(&encode_error_response(ErrorCode::IngestUnsupported)) {
            Err(ProtoError::Remote(ErrorCode::IngestUnsupported)) => {}
            other => panic!("expected remote ingest_unsupported, got {other:?}"),
        }
        // Garbage op byte / truncated id block are typed errors, not panics.
        assert!(decode_ingest_request(&[7, 0, 0, 0, 0]).is_err());
        assert!(decode_ingest_request(&[0, 2, 0, 0, 0, 1, 0]).is_err());
        assert!(decode_ingest_ack(&[0, 1, 9, 9]).is_err());
    }
}
