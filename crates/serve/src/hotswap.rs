//! Zero-downtime model hot-swap.
//!
//! [`HotSwap<T>`] holds the currently published model behind an
//! atomically-bumped version counter. Writers (the refresh daemon) serialize
//! through a mutex and publish a fully-built replacement; readers (serve
//! workers) keep a [`Cached`] snapshot and, on every batch, check a single
//! atomic version load — only when the version moved do they touch the mutex
//! to refresh their `Arc`. In steady state (no swap in flight) the reader
//! hot path is one `Acquire` load and an equality compare; there is no
//! per-read reference-count traffic on a shared counter and no torn read is
//! possible because the `Arc` is cloned under the same mutex the writer
//! published it under.
//!
//! ## Memory-ordering rationale
//!
//! `publish` installs the new `Arc` while holding the writer mutex and only
//! then bumps `version` with `Release`. A reader that observes the bumped
//! version with `Acquire` therefore happens-after the install; when it takes
//! the mutex to clone the slot, the mutex's own acquire/release pairing
//! guarantees it sees the fully-constructed `T` (the model was built
//! *before* `publish` was called, so its writes are ordered before the
//! `Release` bump as well). A reader that observes a *stale* version simply
//! keeps serving its previous snapshot — old answers, never torn ones. The
//! old model is freed when the last in-flight batch drops its `Arc` clone:
//! swaps never invalidate memory a reader is still using.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Atomically published, mutex-written slot for the live model.
pub struct HotSwap<T> {
    /// Bumped (Release) after every publish; readers poll it (Acquire).
    version: AtomicU64,
    /// The live snapshot. Writers replace it; readers clone it (both under
    /// the lock, held only for the pointer copy + refcount bump).
    slot: Mutex<Arc<T>>,
    /// Total publishes since construction.
    swaps: AtomicU64,
}

impl<T> HotSwap<T> {
    /// Publishes `initial` as version 0.
    pub fn new(initial: T) -> Self {
        HotSwap {
            version: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(initial)),
            swaps: AtomicU64::new(0),
        }
    }

    /// Atomically replaces the published value; readers pick the new
    /// snapshot up on their next [`HotSwap::refresh`]. Returns the new
    /// version number. In-flight readers of the old snapshot are untouched.
    pub fn publish(&self, value: T) -> u64 {
        self.publish_arc(Arc::new(value))
    }

    /// Like [`HotSwap::publish`] for an already-shared value.
    pub fn publish_arc(&self, value: Arc<T>) -> u64 {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = value;
        // Bump under the lock, after the install: a reader seeing the new
        // version and then locking the slot must find the new Arc.
        let v = self.version.fetch_add(1, Ordering::Release) + 1;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        drop(slot);
        v
    }

    /// Current version (0 before the first swap).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Total publishes since construction.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Clones the current snapshot (slow path: takes the mutex). Use
    /// [`HotSwap::cache`] + [`HotSwap::refresh`] on hot paths.
    pub fn load(&self) -> Arc<T> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Captures a reader-side cache of the current snapshot.
    pub fn cache(&self) -> Cached<T> {
        // Read the version *before* cloning the slot: if a publish lands in
        // between, the cache pairs the new Arc with the old version and the
        // next refresh harmlessly re-clones.
        let version = self.version();
        let snapshot = self.load();
        Cached { version, snapshot }
    }

    /// Refreshes `cached` if a newer version was published; returns the
    /// up-to-date snapshot. The fast path (version unchanged) is a single
    /// atomic load.
    pub fn refresh<'a>(&self, cached: &'a mut Cached<T>) -> &'a Arc<T> {
        let v = self.version();
        if v != cached.version {
            cached.version = v;
            cached.snapshot = self.load();
        }
        &cached.snapshot
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for HotSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotSwap")
            .field("version", &self.version())
            .field("swaps", &self.swap_count())
            .finish_non_exhaustive()
    }
}

/// A reader's locally-cached snapshot (one per worker thread).
pub struct Cached<T> {
    version: u64,
    snapshot: Arc<T>,
}

impl<T> Cached<T> {
    /// The version this cache last synced to.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The cached snapshot (possibly stale; call [`HotSwap::refresh`] first
    /// on paths that must see recent publishes).
    pub fn snapshot(&self) -> &Arc<T> {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_version_and_readers_catch_up() {
        let swap = HotSwap::new(10u64);
        let mut cached = swap.cache();
        assert_eq!(**swap.refresh(&mut cached), 10);
        assert_eq!(swap.version(), 0);

        assert_eq!(swap.publish(20), 1);
        assert_eq!(**swap.refresh(&mut cached), 20);
        assert_eq!(cached.version(), 1);
        assert_eq!(swap.swap_count(), 1);
    }

    #[test]
    fn stale_readers_keep_their_snapshot_alive() {
        let swap = HotSwap::new(vec![1u8; 64]);
        let cached = swap.cache();
        swap.publish(vec![2u8; 64]);
        // The stale cache still sees the old value, fully intact.
        assert!(cached.snapshot().iter().all(|&b| b == 1));
        assert_eq!(swap.load()[0], 2);
    }

    #[test]
    fn refresh_is_idempotent_without_publishes() {
        let swap = HotSwap::new(5i32);
        let mut cached = swap.cache();
        let a = Arc::as_ptr(swap.refresh(&mut cached));
        let b = Arc::as_ptr(swap.refresh(&mut cached));
        assert_eq!(a, b, "no publish, no re-clone");
    }

    #[test]
    fn concurrent_publishes_serialize() {
        let swap = Arc::new(HotSwap::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let swap = Arc::clone(&swap);
                s.spawn(move || {
                    for i in 0..50 {
                        swap.publish(i);
                    }
                });
            }
        });
        assert_eq!(swap.version(), 200);
        assert_eq!(swap.swap_count(), 200);
    }
}
