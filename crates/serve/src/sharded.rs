//! Sharded serving: one [`ServeRuntime`] (worker pool + hot-swap slot +
//! shard-labeled telemetry) per shard, with fan-out tickets aggregating
//! per-shard answers.
//!
//! Set-content queries cannot be routed to a single shard — any shard may
//! hold a matching set — so every request fans out to all shards and a
//! caller-supplied aggregator folds the per-shard responses (sum for
//! cardinality, first/last fold for the index, OR for membership; see
//! `setlearn::tasks::sharded` for the canonical aggregators).
//!
//! What sharding buys at serve time is *independent shard lifecycles*:
//! each shard has its own queue, worker pool, and [`HotSwap`] slot, so
//! [`ShardedRuntime::rolling_swap`] replaces models shard-by-shard — at any
//! instant at most one shard is transitioning and in-flight batches finish
//! on their old snapshot. The collection is never paused as a whole.

use crate::error::ServeError;
use crate::hotswap::HotSwap;
use crate::request::RequestCtx;
use crate::runtime::{ServeConfig, ServeReport, ServeRuntime, Ticket};
use crate::task::ServeTask;
use setlearn_obs::Stage;
use std::sync::Arc;
use std::time::Instant;

/// Folds per-shard responses (in shard order) into one client answer.
pub type Aggregator<R> = Arc<dyn Fn(Vec<R>) -> R + Send + Sync>;

/// Handle to one fanned-out request: one [`Ticket`] per shard, redeemed
/// together by [`FanoutTicket::wait`].
pub struct FanoutTicket<R> {
    tickets: Vec<Ticket<R>>,
    aggregate: Aggregator<R>,
    ctx: Option<Arc<RequestCtx>>,
}

impl<R> std::fmt::Debug for FanoutTicket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutTicket").field("shards", &self.tickets.len()).finish()
    }
}

impl<R> FanoutTicket<R> {
    /// Blocks until every shard answered, then aggregates. The first shard
    /// failure (panicked batch, lost worker) fails the whole request.
    ///
    /// When a tracing context rides the fan-out, the fold itself is timed
    /// into [`Stage::Aggregate`]; each shard's queue wait and inference time
    /// were already recorded into the shared context by the shard workers
    /// (max-folded, so the breakdown names the slowest shard).
    pub fn wait(self) -> Result<R, ServeError> {
        let mut parts = Vec::with_capacity(self.tickets.len());
        for ticket in self.tickets {
            parts.push(ticket.wait()?);
        }
        let started = self.ctx.as_deref().map(|_| Instant::now());
        let answer = (self.aggregate)(parts);
        if let (Some(ctx), Some(started)) = (self.ctx.as_deref(), started) {
            ctx.record_stage(Stage::Aggregate, started.elapsed());
        }
        Ok(answer)
    }
}

/// Final accounting from [`ShardedRuntime::shutdown`], one report per shard.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Per-shard reports, in shard order.
    pub per_shard: Vec<ServeReport>,
}

impl ShardedReport {
    /// Sub-requests admitted across shards.
    pub fn submitted(&self) -> u64 {
        self.per_shard.iter().map(|r| r.submitted).sum()
    }

    /// Sub-requests answered across shards.
    pub fn completed(&self) -> u64 {
        self.per_shard.iter().map(|r| r.completed).sum()
    }

    /// Sub-requests shed at admission across shards.
    pub fn shed(&self) -> u64 {
        self.per_shard.iter().map(|r| r.shed).sum()
    }

    /// Hot-swaps observed across shards.
    pub fn swaps(&self) -> u64 {
        self.per_shard.iter().map(|r| r.swaps).sum()
    }

    /// Batches whose task panicked, across shards.
    pub fn panicked_batches(&self) -> u64 {
        self.per_shard.iter().map(|r| r.panicked_batches).sum()
    }
}

/// A serving runtime over N per-shard tasks: per-shard pools, fan-out
/// submission, rolling hot-swap.
pub struct ShardedRuntime<T: ServeTask> {
    shards: Vec<ServeRuntime<T>>,
    aggregate: Aggregator<T::Response>,
}

impl<T: ServeTask> ShardedRuntime<T>
where
    T::Request: Clone,
{
    /// Starts one worker pool per task in `tasks` (shard order). The
    /// config's thread budget is split evenly across shards (at least one
    /// worker each); every shard keeps the full queue capacity because
    /// fan-out delivers every request to every shard.
    ///
    /// # Panics
    /// If `tasks` is empty or the per-shard configuration is degenerate.
    pub fn start(
        tasks: Vec<T>,
        config: ServeConfig,
        aggregate: impl Fn(Vec<T::Response>) -> T::Response + Send + Sync + 'static,
    ) -> Self {
        Self::start_inner(tasks, config, Arc::new(aggregate), None)
    }

    /// [`ShardedRuntime::start`] for one named collection in a registry:
    /// every per-shard metric additionally carries a `collection` label.
    pub fn start_named(
        tasks: Vec<T>,
        config: ServeConfig,
        aggregate: impl Fn(Vec<T::Response>) -> T::Response + Send + Sync + 'static,
        collection: &str,
    ) -> Self {
        Self::start_inner(tasks, config, Arc::new(aggregate), Some(collection))
    }

    fn start_inner(
        tasks: Vec<T>,
        config: ServeConfig,
        aggregate: Aggregator<T::Response>,
        collection: Option<&str>,
    ) -> Self {
        assert!(!tasks.is_empty(), "need at least one shard task");
        let per_shard =
            ServeConfig { threads: (config.threads / tasks.len()).max(1), ..config };
        let shards = tasks
            .into_iter()
            .enumerate()
            .map(|(s, task)| {
                let slot = Arc::new(HotSwap::new(task));
                match collection {
                    Some(name) => ServeRuntime::start_named_sharded(
                        slot,
                        per_shard.clone(),
                        name,
                        s,
                    ),
                    None => ServeRuntime::start_sharded(slot, per_shard.clone(), s),
                }
            })
            .collect();
        ShardedRuntime { shards, aggregate }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s runtime (stats, queue depth, hot-swap slot).
    pub fn shard(&self, s: usize) -> &ServeRuntime<T> {
        &self.shards[s]
    }

    /// Fans one request out to every shard. If any shard sheds or refuses,
    /// the whole submission fails with that error; sub-requests already
    /// admitted still complete on their shards (their tickets are dropped,
    /// not torn), so per-shard accounting stays exact.
    pub fn submit(&self, request: T::Request) -> Result<FanoutTicket<T::Response>, ServeError> {
        let mut tickets = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            tickets.push(shard.submit(request.clone())?);
        }
        Ok(FanoutTicket { tickets, aggregate: Arc::clone(&self.aggregate), ctx: None })
    }

    /// Bulk fan-out: each shard admits the whole slice under one queue-lock
    /// acquisition. Per request, the outcome is a fan-out ticket if every
    /// shard admitted it, else the first shard error (partially admitted
    /// sub-requests still complete on their shards).
    pub fn submit_many(
        &self,
        requests: &[T::Request],
    ) -> Vec<Result<FanoutTicket<T::Response>, ServeError>> {
        self.submit_many_traced(requests.iter().map(|r| (r.clone(), None)))
    }

    /// Bulk fan-out with per-request tracing contexts. Every shard receives
    /// a clone of the request *and* of its `Arc<RequestCtx>`, so the shard
    /// workers max-fold their queue-wait / inference observations into one
    /// shared breakdown; the returned ticket times aggregation on redeem.
    pub fn submit_many_traced<I>(
        &self,
        requests: I,
    ) -> Vec<Result<FanoutTicket<T::Response>, ServeError>>
    where
        I: IntoIterator<Item = (T::Request, Option<Arc<RequestCtx>>)>,
    {
        let requests: Vec<(T::Request, Option<Arc<RequestCtx>>)> =
            requests.into_iter().collect();
        let mut per_shard: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                shard
                    .submit_many_traced(
                        requests.iter().map(|(r, ctx)| (r.clone(), ctx.clone())),
                    )
                    .into_iter()
            })
            .collect();
        requests
            .into_iter()
            .map(|(_, ctx)| {
                let mut tickets = Vec::with_capacity(per_shard.len());
                let mut failure = None;
                for outcomes in per_shard.iter_mut() {
                    match outcomes.next().expect("submit_many length contract") {
                        Ok(ticket) => tickets.push(ticket),
                        Err(e) => failure = failure.or(Some(e)),
                    }
                }
                match failure {
                    None => {
                        Ok(FanoutTicket { tickets, aggregate: Arc::clone(&self.aggregate), ctx })
                    }
                    Some(e) => Err(e),
                }
            })
            .collect()
    }

    /// Submit + wait: the synchronous convenience path.
    pub fn call(&self, request: T::Request) -> Result<T::Response, ServeError> {
        self.submit(request)?.wait()
    }

    /// Publishes a new task on one shard; the other shards keep serving
    /// their current versions untouched. Returns the shard's new version.
    pub fn swap_shard(&self, shard: usize, task: T) -> u64 {
        self.shards[shard].swap(task)
    }

    /// Rolling swap: installs `tasks[s]` on shard `s`, one shard at a time
    /// and in shard order. In-flight batches finish on their old snapshots;
    /// at no point is the whole collection paused. Returns the per-shard
    /// versions published.
    ///
    /// # Panics
    /// If `tasks` does not have exactly one task per shard.
    pub fn rolling_swap(&self, tasks: Vec<T>) -> Vec<u64> {
        assert_eq!(tasks.len(), self.shards.len(), "one replacement task per shard");
        tasks
            .into_iter()
            .zip(&self.shards)
            .map(|(task, shard)| shard.swap(task))
            .collect()
    }

    /// Sub-requests currently buffered across all shard queues.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth()).sum()
    }

    /// Total buffer capacity across all shard queues (every shard keeps the
    /// full configured capacity, so this is `shards × queue_capacity`).
    pub fn queue_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.queue_capacity()).sum()
    }

    /// Graceful drain of every shard (in shard order): each refuses new
    /// submissions, serves everything admitted, and joins its workers.
    pub fn shutdown(self) -> ShardedReport {
        ShardedReport {
            per_shard: self.shards.into_iter().map(|s| s.shutdown()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Adds a per-shard offset; aggregation sums, so N shards over offset
    /// base B answer r·N + B·N(N−1)/2 — easy to verify exactly.
    struct Offset(u64);
    impl ServeTask for Offset {
        type Request = u64;
        type Response = u64;
        const NAME: &'static str = "test_offset";
        fn serve_batch(&self, requests: &[u64]) -> Vec<u64> {
            requests.iter().map(|r| r + self.0).collect()
        }
    }

    fn config() -> ServeConfig {
        ServeConfig {
            threads: 2,
            max_batch: 8,
            max_delay: Duration::from_micros(100),
            queue_capacity: 256,
        }
    }

    fn start_offsets(n: u64) -> ShardedRuntime<Offset> {
        ShardedRuntime::start(
            (0..n).map(Offset).collect(),
            config(),
            |parts| parts.into_iter().sum(),
        )
    }

    #[test]
    fn fanout_aggregates_across_all_shards() {
        let runtime = start_offsets(3);
        assert_eq!(runtime.num_shards(), 3);
        // 3 shards: r*3 + (0+1+2).
        assert_eq!(runtime.call(10).unwrap(), 33);
        let tickets: Vec<_> = (0..50u64).map(|r| runtime.submit(r).unwrap()).collect();
        for (r, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.wait().unwrap(), r as u64 * 3 + 3);
        }
        let report = runtime.shutdown();
        assert_eq!(report.completed(), 51 * 3);
        assert_eq!(report.shed(), 0);
        for shard in &report.per_shard {
            assert_eq!(shard.submitted, shard.completed, "admitted sub-requests all served");
        }
    }

    #[test]
    fn submit_many_fans_out_in_order() {
        let runtime = start_offsets(2);
        let requests: Vec<u64> = (0..40).collect();
        let outcomes = runtime.submit_many(&requests);
        assert_eq!(outcomes.len(), 40);
        for (r, outcome) in outcomes.into_iter().enumerate() {
            assert_eq!(outcome.unwrap().wait().unwrap(), r as u64 * 2 + 1);
        }
        runtime.shutdown();
    }

    #[test]
    fn swapping_one_shard_leaves_the_others_serving() {
        let runtime = start_offsets(2);
        assert_eq!(runtime.call(0).unwrap(), 1);
        runtime.swap_shard(1, Offset(100));
        assert_eq!(runtime.call(0).unwrap(), 100);
        let report = runtime.shutdown();
        assert_eq!(report.swaps(), 1);
        assert_eq!(report.per_shard[0].swaps, 0);
        assert_eq!(report.per_shard[1].swaps, 1);
    }

    #[test]
    fn rolling_swap_touches_every_shard_once() {
        let runtime = start_offsets(3);
        let versions = runtime.rolling_swap(vec![Offset(10), Offset(20), Offset(30)]);
        assert_eq!(versions, vec![1, 1, 1]);
        assert_eq!(runtime.call(0).unwrap(), 60);
        let report = runtime.shutdown();
        assert_eq!(report.swaps(), 3);
    }

    #[test]
    fn partial_shed_fails_the_fanout_but_keeps_accounting_exact() {
        // Shard queues of capacity 1 and a single slow worker per shard: a
        // burst must shed somewhere. The invariant under test: every shard's
        // submitted sub-requests are eventually completed (none torn), and
        // shed is only ever counted at admission.
        let runtime = ShardedRuntime::start(
            vec![Offset(0), Offset(1)],
            ServeConfig { threads: 2, queue_capacity: 1, ..config() },
            |parts| parts.into_iter().sum(),
        );
        let outcomes = runtime.submit_many(&(0..64u64).collect::<Vec<_>>());
        let mut served = 0u64;
        for ticket in outcomes.into_iter().flatten() {
            let _ = ticket.wait();
            served += 1;
        }
        let report = runtime.shutdown();
        for shard in &report.per_shard {
            assert_eq!(shard.submitted, shard.completed, "no admitted sub-request lost");
        }
        assert!(report.completed() >= served * 2, "fan-out answers cover every full success");
    }
}
