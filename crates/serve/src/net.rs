//! TCP front-end for the serving runtime: remote clients speak the `SLP1`
//! wire protocol (see [`crate::proto`]) and get the same admission paths —
//! bounded-queue backpressure, adaptive micro-batching, typed shedding, and
//! [`setlearn::tasks::QueryOutcome`] degradation flags — as in-process
//! callers, without linking the crate.
//!
//! Everything is std-only: a nonblocking [`TcpListener`] accept loop polling
//! a shutdown flag, plus one handler thread per connection. A handler reads
//! one frame at a time (a frame carries a whole query batch), decodes it,
//! canonicalizes the query sets, bulk-submits them into the backend
//! ([`ServeRuntime`] or [`ShardedRuntime`] behind the [`WireBackend`]
//! trait), waits the tickets in order, and writes one response frame.
//! Cross-request batching happens where it always has: in the runtime's
//! worker pool, across connections.
//!
//! ## Robustness
//!
//! * **Read/write timeouts** — a peer that stalls mid-frame (or goes idle
//!   past the read timeout) is disconnected; it cannot pin a handler thread
//!   forever.
//! * **Max-frame-size rejection** — the declared payload length is checked
//!   against the configured cap before any allocation; oversized frames are
//!   answered with [`ErrorCode::FrameTooLarge`] and the connection closed.
//! * **Graceful drain** — [`NetServer::shutdown`] closes the listener
//!   *first* (no new connections), then joins handlers, each of which
//!   finishes answering the frame it already accepted before exiting.
//! * **Typed errors end-to-end** — a shed query, a panicked batch, and a
//!   malformed frame reach the client as distinct [`ErrorCode`]s, not
//!   stringified I/O errors.

use crate::error::ServeError;
use crate::proto::{
    decode_admin_ack, decode_collection_name, decode_collections_reply, decode_health_report,
    decode_ingest_ack, decode_ingest_request, decode_request_batch, decode_response_batch,
    decode_stats_reply, decode_stats_request, encode_collection_name, encode_collections_reply,
    encode_error_response, encode_frame, encode_frame_echoing, encode_frame_v2,
    encode_health_report, encode_health_report_v2, encode_ingest_ack, encode_ingest_request,
    encode_request_batch_traced, encode_response_batch, encode_stats_reply, encode_stats_request,
    read_frame, CollectionInfo, ErrorCode, Frame, HealthReport, IngestAck, IngestRequest,
    ProtoError, StatsFormat, WireOutcome, ADMIN_KIND_MAX, ADMIN_KIND_MIN,
    DEFAULT_MAX_FRAME_BYTES, HEADER_LEN, KIND_ATTACH, KIND_COLLECTIONS, KIND_DETACH, KIND_HEALTH,
    KIND_INGEST, KIND_PING, KIND_SHUTDOWN, KIND_STATS, MAGIC, VERSION, VERSION_V2,
};
use crate::registry::{AdminError, CollectionRegistry, ResolveError, Resident};
use crate::request::RequestCtx;
use crate::runtime::ServeRuntime;
use crate::sharded::ShardedRuntime;
use crate::task::StructureTask;
use crate::telemetry::NetTele;
use setlearn::mutable::{MutableSink, MutateError};
use setlearn::tasks::{LearnedSetStructure, QueryOutcome};
use setlearn::wire::{QueryRequest, QueryResponse, WireTask};
use setlearn_data::ElementSet;
use setlearn_obs::{Field, SlowQueryLog, SlowQueryRecord, Stage, DEFAULT_SLOW_LOG_CAPACITY};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Hard cap on a frame's payload bytes; larger declared lengths are
    /// refused with [`ErrorCode::FrameTooLarge`] before any allocation.
    pub max_frame_bytes: usize,
    /// A connection idle (or stalled mid-frame) longer than this is closed.
    pub read_timeout: Duration,
    /// A response write blocked longer than this closes the connection.
    pub write_timeout: Duration,
    /// Whether a `SLP1` shutdown frame may drain the server. Off by
    /// default; the CLI's `--allow-remote-shutdown` turns it on so CI can
    /// stop a serving process deterministically.
    pub allow_remote_shutdown: bool,
    /// Query frames slower than this (frame receipt → response written) are
    /// recorded in the slow-query ring with their per-stage breakdown.
    /// `None` disables the slow-query log.
    pub slow_query_threshold: Option<Duration>,
    /// Slow-query ring capacity; when full, the oldest record is evicted
    /// (and counted as dropped).
    pub slow_log_capacity: usize,
    /// How long a remotely requested shutdown keeps serving before the
    /// listener actually closes. During the grace window health probes
    /// answer *not ready* (so load balancers stop routing here) while
    /// in-flight and newly arriving frames are still answered. Zero (the
    /// default) shuts down immediately.
    pub drain_grace: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            allow_remote_shutdown: false,
            slow_query_threshold: None,
            slow_log_capacity: DEFAULT_SLOW_LOG_CAPACITY,
            drain_grace: Duration::ZERO,
        }
    }
}

/// A claim on one in-flight remote query: redeem it (once) for the query's
/// wire response. Boxed so [`ServeRuntime`] and [`ShardedRuntime`] tickets
/// serve through one object-safe backend.
pub type WireTicket = Box<dyn FnOnce() -> Result<QueryResponse, ServeError> + Send>;

/// The serving side of the wire: anything that can admit a batch of
/// canonical query sets and answer them as [`QueryResponse`]s.
///
/// Implemented for [`ServeRuntime`] and [`ShardedRuntime`] over any
/// [`StructureTask`] whose output is a wire value, so the TCP front-end is
/// indifferent to sharding.
pub trait WireBackend: Send + Sync {
    /// The task this backend serves; frames addressing a different task are
    /// refused with [`ErrorCode::TaskMismatch`].
    fn wire_task(&self) -> WireTask;

    /// Bulk-admits the batch (one queue-lock acquisition on the runtime
    /// side), returning exactly one ticket per query in order. A shed or
    /// refused query yields a ticket that resolves to its [`ServeError`].
    fn submit_wire(&self, sets: Vec<ElementSet>) -> Vec<WireTicket>;

    /// Like [`WireBackend::submit_wire`], threading a shared tracing
    /// context so workers (and sharded fan-out) record their queue-wait /
    /// batch-wait / inference stages into the request's breakdown. The
    /// default ignores the context — tracing degrades, serving does not.
    fn submit_wire_traced(
        &self,
        sets: Vec<ElementSet>,
        ctx: Option<Arc<RequestCtx>>,
    ) -> Vec<WireTicket> {
        let _ = ctx;
        self.submit_wire(sets)
    }

    /// Applies one durable mutation. The default refuses with
    /// [`ErrorCode::IngestUnsupported`]: plain model-serving backends are
    /// immutable; wrap one in [`MutableBackend`] to accept writes.
    fn submit_ingest(&self, request: IngestRequest) -> Result<IngestAck, ErrorCode> {
        let _ = request;
        Err(ErrorCode::IngestUnsupported)
    }

    /// `(queue_depth, queue_capacity)` across the backend's admission
    /// queue(s), the health probe's saturation input. `(0, 0)` means the
    /// backend does not expose a queue.
    fn queue_stats(&self) -> (usize, usize) {
        (0, 0)
    }

    /// Hot-swap version of the served model (0 = never swapped; sharded
    /// backends report the newest shard).
    fn model_version(&self) -> u64 {
        0
    }

    /// Shards behind this backend (1 when unsharded).
    fn shards(&self) -> u32 {
        1
    }

    /// Mutations awaiting compaction (compactor lag); 0 when immutable.
    fn pending_ingest(&self) -> u64 {
        0
    }
}

/// A [`WireBackend`] decorator that adds the durable write path: queries
/// delegate to the wrapped backend, ingest frames go to the
/// [`MutableSink`] (a [`setlearn::mutable::MutableCollection`]), which
/// fsyncs the WAL before the ack is sent.
pub struct MutableBackend {
    inner: Arc<dyn WireBackend>,
    sink: Arc<dyn MutableSink>,
}

impl MutableBackend {
    /// Wraps `inner`, routing ingest frames to `sink`.
    pub fn new(inner: Arc<dyn WireBackend>, sink: Arc<dyn MutableSink>) -> Self {
        MutableBackend { inner, sink }
    }
}

impl WireBackend for MutableBackend {
    fn wire_task(&self) -> WireTask {
        self.inner.wire_task()
    }

    fn submit_wire(&self, sets: Vec<ElementSet>) -> Vec<WireTicket> {
        self.inner.submit_wire(sets)
    }

    fn submit_wire_traced(
        &self,
        sets: Vec<ElementSet>,
        ctx: Option<Arc<RequestCtx>>,
    ) -> Vec<WireTicket> {
        self.inner.submit_wire_traced(sets, ctx)
    }

    fn queue_stats(&self) -> (usize, usize) {
        self.inner.queue_stats()
    }

    fn model_version(&self) -> u64 {
        self.inner.model_version()
    }

    fn shards(&self) -> u32 {
        self.inner.shards()
    }

    fn pending_ingest(&self) -> u64 {
        self.sink.pending_ops()
    }

    fn submit_ingest(&self, request: IngestRequest) -> Result<IngestAck, ErrorCode> {
        match self.sink.ingest(request.delete, &request.elements) {
            Ok(ack) => Ok(IngestAck { seq: ack.seq, applied: ack.applied }),
            // Validation refusals vs durability failures are distinct codes:
            // a client may retry the latter, never the former.
            Err(MutateError::EmptySet | MutateError::OutOfVocab { .. }) => {
                Err(ErrorCode::IngestRejected)
            }
            Err(MutateError::Wal(_)) => Err(ErrorCode::IngestFailed),
        }
    }
}

fn wire_task_of<S: LearnedSetStructure>() -> WireTask {
    S::NAME.parse().expect("LearnedSetStructure::NAME is a wire task label")
}

impl<S> WireBackend for ServeRuntime<StructureTask<S>>
where
    S: LearnedSetStructure + Send + Sync + 'static,
    S::Output: Send + 'static,
    QueryResponse: From<QueryOutcome<S::Output>>,
{
    fn wire_task(&self) -> WireTask {
        wire_task_of::<S>()
    }

    fn submit_wire(&self, sets: Vec<ElementSet>) -> Vec<WireTicket> {
        self.submit_wire_traced(sets, None)
    }

    fn submit_wire_traced(
        &self,
        sets: Vec<ElementSet>,
        ctx: Option<Arc<RequestCtx>>,
    ) -> Vec<WireTicket> {
        self.submit_many_traced(sets.into_iter().map(|s| (s, ctx.clone())))
            .into_iter()
            .map(|outcome| -> WireTicket {
                match outcome {
                    Ok(ticket) => Box::new(move || ticket.wait().map(QueryResponse::from)),
                    Err(e) => Box::new(move || Err(e)),
                }
            })
            .collect()
    }

    fn queue_stats(&self) -> (usize, usize) {
        (self.queue_depth(), self.queue_capacity())
    }

    fn model_version(&self) -> u64 {
        self.model().version()
    }
}

impl<S> WireBackend for ShardedRuntime<StructureTask<S>>
where
    S: LearnedSetStructure + Send + Sync + 'static,
    S::Output: Send + 'static,
    QueryResponse: From<QueryOutcome<S::Output>>,
{
    fn wire_task(&self) -> WireTask {
        wire_task_of::<S>()
    }

    fn submit_wire(&self, sets: Vec<ElementSet>) -> Vec<WireTicket> {
        self.submit_wire_traced(sets, None)
    }

    fn submit_wire_traced(
        &self,
        sets: Vec<ElementSet>,
        ctx: Option<Arc<RequestCtx>>,
    ) -> Vec<WireTicket> {
        self.submit_many_traced(sets.into_iter().map(|s| (s, ctx.clone())))
            .into_iter()
            .map(|outcome| -> WireTicket {
                match outcome {
                    Ok(ticket) => Box::new(move || ticket.wait().map(QueryResponse::from)),
                    Err(e) => Box::new(move || Err(e)),
                }
            })
            .collect()
    }

    fn queue_stats(&self) -> (usize, usize) {
        (self.queue_depth(), self.queue_capacity())
    }

    fn model_version(&self) -> u64 {
        (0..self.num_shards()).map(|s| self.shard(s).model().version()).max().unwrap_or(0)
    }

    fn shards(&self) -> u32 {
        self.num_shards() as u32
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// The TCP front-end: accepts connections and serves `SLP1` frames out of a
/// [`WireBackend`]. The server borrows the backend (via `Arc`) — it never
/// owns or drains the runtime, so shutdown ordering stays with the caller:
/// drain the net server first (accepted frames answered), then the runtime.
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// What a server routes frames into: one backend, or a whole registry.
enum Serving {
    /// Classic single-tenant serving: every query frame goes to this
    /// backend; frames addressing a named collection are refused.
    Single(Arc<dyn WireBackend>),
    /// Multi-tenant serving: frames resolve through the registry by
    /// collection id (v1 frames route to the registry's default).
    Registry(Arc<CollectionRegistry>),
}

/// State shared between the accept loop, every connection handler, and the
/// [`NetServer`] handle: the serving target, the config, the lifecycle
/// flags, the slow-query ring, and the cached metric handles.
struct ServerShared {
    serving: Serving,
    config: NetConfig,
    /// Hard stop: the accept loop exits and idle handlers disconnect.
    shutdown: AtomicBool,
    /// Soft stop: health answers *not ready* while frames are still served
    /// (the drain-grace window of a remote shutdown, or a local drain).
    draining: AtomicBool,
    slow_log: SlowQueryLog,
    tele: NetTele,
}

impl fmt::Debug for NetServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetServer").field("local_addr", &self.local_addr).finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// the accept loop over `backend`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn WireBackend>,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let tele = NetTele::new(backend.wire_task().label());
        Self::bind_serving(addr, Serving::Single(backend), config, tele)
    }

    /// Binds `addr` and serves every collection in `registry`: SLP1 v2
    /// frames route by their collection id (loading checkpoints lazily),
    /// v1 frames route to the registry's default collection, and the
    /// collection admin frames (list/attach/detach) are live.
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        registry: Arc<CollectionRegistry>,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        // Connection-level telemetry is not per-collection (a connection
        // may address many); per-frame latency lands on each resident's
        // own collection-labeled handles.
        let tele = NetTele::new("registry");
        Self::bind_serving(addr, Serving::Registry(registry), config, tele)
    }

    fn bind_serving(
        addr: impl ToSocketAddrs,
        serving: Serving,
        config: NetConfig,
        tele: NetTele,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let slow_log = SlowQueryLog::new(config.slow_log_capacity);
        if let Some(threshold) = config.slow_query_threshold {
            slow_log.set_threshold_us(threshold.as_micros().min(u64::MAX as u128) as u64);
        }
        let shared = Arc::new(ServerShared {
            serving,
            config,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            slow_log,
            tele,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || accept_loop(listener, shared, handlers))
        };
        Ok(NetServer { local_addr, shared, accept_thread: Some(accept_thread), handlers })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a shutdown was requested (locally or by a remote shutdown
    /// frame, when those are allowed). The CLI's serve loop polls this.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Whether the server is draining: health probes answer *not ready*,
    /// but frames are still accepted and served. True from the moment a
    /// (graced) remote shutdown is acknowledged until the process exits.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
            || self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The server's slow-query ring (threshold per [`NetConfig`]); also
    /// retrievable over the wire via a stats frame in
    /// [`StatsFormat::SlowQueries`].
    pub fn slow_queries(&self) -> Vec<SlowQueryRecord> {
        self.shared.slow_log.records()
    }

    /// Graceful drain: the listener closes first (no new connections), then
    /// every handler finishes answering the frame it already accepted and
    /// exits. The backend runtime is untouched — drain it after this.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept_thread.take() {
            // Joining the accept thread drops the listener: closed first.
            let _ = accept.join();
        }
        let handlers = {
            let mut guard = self.handlers.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // A plain drop still drains; `shutdown` only makes the order explicit.
        self.drain();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || handle_connection(stream, shared));
                let mut guard = handlers.lock().unwrap_or_else(|p| p.into_inner());
                // Reap finished handlers so a long-lived server does not
                // accumulate join handles without bound.
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake): brief
                // backoff, keep accepting.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // Returning drops the listener: the port closes before handlers drain.
}

/// Outcome of trying to read one frame off a polled connection.
enum FrameRead {
    /// A complete, CRC-verified frame.
    Frame(crate::proto::Frame),
    /// The connection is done: clean EOF at a frame boundary, shutdown
    /// observed while idle, idle/stall timeout, or transport error. The
    /// handler exits without a response.
    Closed,
    /// The peer sent bytes that are not a valid frame; answer the typed
    /// code, then close (framing can no longer be trusted).
    Refuse {
        /// Kind byte to echo (0 when the header itself was garbage).
        kind: u8,
        /// Request id to echo (0 when unknown).
        id: u64,
        /// The refusal.
        code: ErrorCode,
    },
}

/// Reads exactly `buf.len()` bytes with the poll-tick read timeout doing the
/// shutdown checks. `None` means the connection is done (EOF at offset 0,
/// shutdown while idle, idle/stall timeout, or I/O error); mid-frame EOF and
/// stalls also land there — a half-sent frame gets no response.
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    read_timeout: Duration,
    may_idle_exit: bool,
) -> Option<()> {
    let mut off = 0;
    let mut last_progress = Instant::now();
    while off < buf.len() {
        if off == 0 && may_idle_exit && shutdown.load(Ordering::SeqCst) {
            return None;
        }
        match stream.read(&mut buf[off..]) {
            Ok(0) => return None,
            Ok(n) => {
                off += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_progress.elapsed() >= read_timeout {
                    return None;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    Some(())
}

/// Reads one frame with polling, size-cap, and CRC checks. Mirrors
/// [`crate::proto::read_frame`] but never blocks past a poll tick without
/// checking the shutdown flag, and maps malformed input to [`FrameRead::Refuse`]
/// so the peer learns *why* it is being disconnected.
fn read_frame_polling(
    stream: &mut TcpStream,
    config: &NetConfig,
    shutdown: &AtomicBool,
    tele: &NetTele,
) -> FrameRead {
    let mut header = [0u8; HEADER_LEN];
    if read_exact_polling(stream, &mut header, shutdown, config.read_timeout, true).is_none() {
        return FrameRead::Closed;
    }
    let magic: [u8; 4] = header[0..4].try_into().expect("fixed slice");
    if magic != MAGIC {
        tele.record_protocol_error(ErrorCode::BadFrame);
        return FrameRead::Refuse { kind: 0, id: 0, code: ErrorCode::BadFrame };
    }
    let kind = header[5];
    let id = u64::from_le_bytes(header[6..14].try_into().expect("fixed slice"));
    let version = header[4];
    if version != VERSION && version != VERSION_V2 {
        tele.record_protocol_error(ErrorCode::UnsupportedVersion);
        return FrameRead::Refuse { kind, id, code: ErrorCode::UnsupportedVersion };
    }
    let len = u32::from_le_bytes(header[14..18].try_into().expect("fixed slice")) as usize;
    let declared_crc = u32::from_le_bytes(header[18..22].try_into().expect("fixed slice"));
    if len > config.max_frame_bytes {
        tele.record_protocol_error(ErrorCode::FrameTooLarge);
        return FrameRead::Refuse { kind, id, code: ErrorCode::FrameTooLarge };
    }
    let mut payload = vec![0u8; len];
    // A frame whose header already arrived gets read to completion even
    // during a drain: it was accepted, so it will be answered.
    if read_exact_polling(stream, &mut payload, shutdown, config.read_timeout, false).is_none() {
        return FrameRead::Closed;
    }
    tele.record_bytes_in(HEADER_LEN + len);
    if setlearn::persist::crc32(&payload) != declared_crc {
        tele.record_protocol_error(ErrorCode::BadFrame);
        return FrameRead::Refuse { kind, id, code: ErrorCode::BadFrame };
    }
    // A v2 payload opens with the length-prefixed collection id (covered by
    // the CRC above); a truncated or garbled field is a typed BadFrame, not
    // a hang or a misparse of the remaining body.
    let collection = if version == VERSION_V2 {
        let mut input = payload.as_slice();
        match setlearn::wire::decode_collection_id(&mut input) {
            Ok(collection) => {
                payload = input.to_vec();
                collection
            }
            Err(_) => {
                tele.record_protocol_error(ErrorCode::BadFrame);
                return FrameRead::Refuse { kind, id, code: ErrorCode::BadFrame };
            }
        }
    } else {
        None
    };
    FrameRead::Frame(Frame { version, kind, id, collection, payload })
}

/// Writes a v1 frame, counting the bytes. Returns `false` when the
/// connection should close (write failure or timeout). Used for refusals
/// where no decoded request frame exists to echo.
fn write_response(stream: &mut TcpStream, kind: u8, id: u64, payload: &[u8], tele: &NetTele) -> bool {
    write_bytes(stream, encode_frame(kind, id, payload), tele)
}

/// Writes a response echoing `request`'s version (and, for v2, its
/// collection id), so v1 clients keep receiving bit-identical v1 frames
/// while v2 clients can match responses to the collection they addressed.
fn write_response_to(
    stream: &mut TcpStream,
    request: &Frame,
    kind: u8,
    payload: &[u8],
    tele: &NetTele,
) -> bool {
    write_bytes(stream, encode_frame_echoing(request, kind, payload), tele)
}

fn write_bytes(stream: &mut TcpStream, bytes: Vec<u8>, tele: &NetTele) -> bool {
    match stream.write_all(&bytes).and_then(|()| stream.flush()) {
        Ok(()) => {
            tele.record_bytes_out(bytes.len());
            true
        }
        Err(_) => false,
    }
}

/// Computes the health verdict answered to a `KIND_HEALTH` frame.
///
/// Verdict rules (see `DESIGN.md` §13): the server is *not ready* while
/// draining or while the admission queue is ≥90% saturated (in registry
/// mode, the most saturated resident queue). WAL tail truncations,
/// compactor lag, and a never-swapped model are evidence (reasons) but do
/// not by themselves flip readiness.
fn health_report(shared: &ServerShared) -> HealthReport {
    let (depth, capacity, shards, model_version) = match &shared.serving {
        Serving::Single(backend) => {
            let (d, c) = backend.queue_stats();
            (d, c, backend.shards(), backend.model_version())
        }
        Serving::Registry(registry) => {
            let (d, c) = registry.worst_queue();
            (d, c, 1, 0)
        }
    };
    let (resident_collections, collection_pending) = match &shared.serving {
        Serving::Single(_) => (1, Vec::new()),
        Serving::Registry(registry) => {
            (registry.resident_count(), registry.collection_pending())
        }
    };
    let draining = shared.draining.load(Ordering::SeqCst)
        || shared.shutdown.load(Ordering::SeqCst);
    let saturated = capacity > 0 && depth * 10 >= capacity * 9;
    let wal_truncations =
        setlearn_obs::metrics().counter_with("setlearn_wal_truncated_tail_total", &[]).get();
    let compactor_pending = match &shared.serving {
        Serving::Single(backend) => backend.pending_ingest(),
        Serving::Registry(_) => collection_pending.iter().map(|(_, n)| n).sum(),
    };
    let mut reasons = Vec::new();
    if draining {
        reasons.push("draining: graceful shutdown in progress".to_string());
    }
    if saturated {
        reasons.push(format!("queue saturated: {depth}/{capacity} buffered"));
    }
    if wal_truncations > 0 {
        reasons.push(format!("wal: {wal_truncations} tail truncation(s) at recovery"));
    }
    if compactor_pending > 0 {
        reasons.push(format!("compactor lag: {compactor_pending} mutation(s) pending"));
    }
    HealthReport {
        ready: !draining && !saturated,
        draining,
        queue_depth: depth as u64,
        queue_capacity: capacity as u64,
        shards,
        wal_truncations,
        compactor_pending,
        model_version,
        reasons,
        resident_collections,
        collection_pending,
    }
}

/// A resolved frame target: the backend serving it and, in registry mode,
/// the resident whose quota and telemetry govern the frame.
type ResolvedTarget = (Arc<dyn WireBackend>, Option<Arc<Resident>>);

/// Resolves a frame's collection id to the backend serving it (plus, in
/// registry mode, the resident whose quota and telemetry govern the frame).
fn resolve_target(
    serving: &Serving,
    collection: Option<&str>,
) -> Result<ResolvedTarget, ErrorCode> {
    match serving {
        Serving::Single(backend) => match collection {
            // A single-tenant server has no registry to look names up in.
            Some(_) => Err(ErrorCode::UnknownCollection),
            None => Ok((Arc::clone(backend), None)),
        },
        Serving::Registry(registry) => match registry.resolve(collection) {
            Ok(resident) => Ok((Arc::clone(resident.backend()), Some(resident))),
            Err(ResolveError::Loading(_)) => Err(ErrorCode::CollectionLoading),
            Err(ResolveError::Unknown(_) | ResolveError::Failed(..)) => {
                Err(ErrorCode::UnknownCollection)
            }
        },
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<ServerShared>) {
    let config = &shared.config;
    let shutdown = &shared.shutdown;
    let tele = &shared.tele;
    // The poll tick is the *read* timeout at the syscall level; the
    // configured read_timeout is enforced on top by `read_exact_polling`.
    if stream.set_read_timeout(Some(POLL_TICK)).is_err()
        || stream.set_write_timeout(Some(config.write_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    tele.connection_opened();
    loop {
        let frame = match read_frame_polling(&mut stream, config, shutdown, tele) {
            FrameRead::Frame(frame) => frame,
            FrameRead::Closed => break,
            FrameRead::Refuse { kind, id, code } => {
                let _ = write_response(&mut stream, kind, id, &encode_error_response(code), tele);
                break;
            }
        };
        let started = Instant::now();
        match frame.kind {
            KIND_PING => {
                if !write_response_to(&mut stream, &frame, KIND_PING, &encode_response_batch(&[]), tele)
                {
                    break;
                }
            }
            KIND_STATS => {
                let payload = match decode_stats_request(&frame.payload) {
                    Ok(StatsFormat::Prometheus) => encode_stats_reply(
                        &setlearn_obs::to_prometheus(&setlearn_obs::metrics().snapshot()),
                    ),
                    Ok(StatsFormat::Json) => encode_stats_reply(&setlearn_obs::to_json(
                        &setlearn_obs::metrics().snapshot(),
                    )),
                    Ok(StatsFormat::SlowQueries) => {
                        encode_stats_reply(&shared.slow_log.to_jsonl())
                    }
                    Err(_) => {
                        tele.record_protocol_error(ErrorCode::BadFrame);
                        encode_error_response(ErrorCode::BadFrame)
                    }
                };
                if !write_response_to(&mut stream, &frame, KIND_STATS, &payload, tele) {
                    break;
                }
            }
            KIND_HEALTH => {
                let report = health_report(&shared);
                // A v2 client gets the extended body (resident collections,
                // per-collection pending ops); a v1 client gets the exact
                // pre-registry byte layout.
                let payload = if frame.version == VERSION_V2 {
                    encode_health_report_v2(&report)
                } else {
                    encode_health_report(&report)
                };
                if !write_response_to(&mut stream, &frame, KIND_HEALTH, &payload, tele) {
                    break;
                }
            }
            KIND_INGEST => {
                let resolved = resolve_target(&shared.serving, frame.collection.as_deref());
                let payload = match resolved {
                    Err(code) => {
                        tele.record_protocol_error(code);
                        encode_error_response(code)
                    }
                    Ok((backend, resident)) => match decode_ingest_request(&frame.payload) {
                        Ok(request) => match backend.submit_ingest(request) {
                            Ok(ack) => {
                                let ftele =
                                    resident.as_ref().map(|r| r.tele()).unwrap_or(tele);
                                ftele.record_ingest(started.elapsed());
                                encode_ingest_ack(ack)
                            }
                            Err(code) => {
                                tele.record_protocol_error(code);
                                encode_error_response(code)
                            }
                        },
                        Err(_) => {
                            tele.record_protocol_error(ErrorCode::BadFrame);
                            encode_error_response(ErrorCode::BadFrame)
                        }
                    },
                };
                if !write_response_to(&mut stream, &frame, KIND_INGEST, &payload, tele) {
                    break;
                }
            }
            KIND_SHUTDOWN => {
                if config.allow_remote_shutdown {
                    // Ack first, then raise the flag: the requester gets its
                    // answer before the drain starts closing things.
                    let ok = write_response_to(
                        &mut stream,
                        &frame,
                        KIND_SHUTDOWN,
                        &encode_response_batch(&[]),
                        tele,
                    );
                    shared.draining.store(true, Ordering::SeqCst);
                    if config.drain_grace.is_zero() {
                        shutdown.store(true, Ordering::SeqCst);
                    } else {
                        // Grace window: health already answers *not ready*
                        // (load balancers stop routing), while this and
                        // every other handler keep serving until the timer
                        // promotes the drain to a full shutdown.
                        let grace = config.drain_grace;
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || {
                            std::thread::sleep(grace);
                            shared.shutdown.store(true, Ordering::SeqCst);
                        });
                    }
                    if !ok {
                        break;
                    }
                } else {
                    tele.record_protocol_error(ErrorCode::ShutdownNotAllowed);
                    let _ = write_response_to(
                        &mut stream,
                        &frame,
                        KIND_SHUTDOWN,
                        &encode_error_response(ErrorCode::ShutdownNotAllowed),
                        tele,
                    );
                    break;
                }
            }
            KIND_COLLECTIONS => {
                let payload = match &shared.serving {
                    Serving::Registry(registry) => encode_collections_reply(&registry.list()),
                    Serving::Single(_) => {
                        tele.record_protocol_error(ErrorCode::AdminUnsupported);
                        encode_error_response(ErrorCode::AdminUnsupported)
                    }
                };
                if !write_response_to(&mut stream, &frame, KIND_COLLECTIONS, &payload, tele) {
                    break;
                }
            }
            kind @ (KIND_ATTACH | KIND_DETACH) => {
                let payload = match &shared.serving {
                    Serving::Single(_) => {
                        tele.record_protocol_error(ErrorCode::AdminUnsupported);
                        encode_error_response(ErrorCode::AdminUnsupported)
                    }
                    Serving::Registry(registry) => {
                        match decode_collection_name(&frame.payload) {
                            Err(_) => {
                                tele.record_protocol_error(ErrorCode::BadFrame);
                                encode_error_response(ErrorCode::BadFrame)
                            }
                            Ok(name) => {
                                let outcome = if kind == KIND_ATTACH {
                                    registry.attach(&name)
                                } else {
                                    registry.detach(&name)
                                };
                                match outcome {
                                    // Status byte 0: the admin ack body.
                                    Ok(()) => vec![0],
                                    Err(AdminError::Unknown(_)) => {
                                        tele.record_protocol_error(ErrorCode::UnknownCollection);
                                        encode_error_response(ErrorCode::UnknownCollection)
                                    }
                                    // A pinned collection (pending WAL ops or
                                    // live compaction) refuses detach the same
                                    // way a closed collection refuses writes.
                                    Err(AdminError::Busy(_)) => {
                                        tele.record_protocol_error(ErrorCode::IngestRejected);
                                        encode_error_response(ErrorCode::IngestRejected)
                                    }
                                }
                            }
                        }
                    }
                };
                if !write_response_to(&mut stream, &frame, kind, &payload, tele) {
                    break;
                }
            }
            kind if (ADMIN_KIND_MIN..=ADMIN_KIND_MAX).contains(&kind) => {
                // An admin kind this server predates: a typed refusal, not
                // BadFrame — framing is intact, so newer clients can probe
                // and the connection stays usable.
                tele.record_protocol_error(ErrorCode::AdminUnsupported);
                if !write_response_to(
                    &mut stream,
                    &frame,
                    kind,
                    &encode_error_response(ErrorCode::AdminUnsupported),
                    tele,
                ) {
                    break;
                }
            }
            kind => {
                let task = match frame.task() {
                    Some(task) => task,
                    None => {
                        tele.record_protocol_error(ErrorCode::BadFrame);
                        let _ = write_response_to(
                            &mut stream,
                            &frame,
                            kind,
                            &encode_error_response(ErrorCode::BadFrame),
                            tele,
                        );
                        break;
                    }
                };
                let (backend, resident) =
                    match resolve_target(&shared.serving, frame.collection.as_deref()) {
                        Ok(resolved) => resolved,
                        Err(code) => {
                            tele.record_protocol_error(code);
                            // An addressing mistake (or a still-loading
                            // collection), not stream corruption: the
                            // connection stays usable.
                            if !write_response_to(
                                &mut stream,
                                &frame,
                                kind,
                                &encode_error_response(code),
                                tele,
                            ) {
                                break;
                            }
                            continue;
                        }
                    };
                if task != backend.wire_task() {
                    tele.record_protocol_error(ErrorCode::TaskMismatch);
                    if !write_response_to(
                        &mut stream,
                        &frame,
                        kind,
                        &encode_error_response(ErrorCode::TaskMismatch),
                        tele,
                    ) {
                        break;
                    }
                    // A task mismatch is an addressing mistake, not stream
                    // corruption: the connection stays usable.
                    continue;
                }
                let (queries, client_trace) = match decode_request_batch(&frame.payload) {
                    Ok(decoded) => decoded,
                    Err(_) => {
                        tele.record_protocol_error(ErrorCode::BadFrame);
                        let _ = write_response_to(
                            &mut stream,
                            &frame,
                            kind,
                            &encode_error_response(ErrorCode::BadFrame),
                            tele,
                        );
                        break;
                    }
                };
                // Per-tenant admission: a token-bucket refusal is a typed
                // shed distinct from the global queue's Overloaded, so one
                // tenant burning its budget never reads as server overload.
                if let Some(resident) = &resident {
                    if !resident.try_admit(queries.len()) {
                        resident
                            .tele()
                            .record_protocol_error(ErrorCode::TenantOverloaded);
                        if !write_response_to(
                            &mut stream,
                            &frame,
                            kind,
                            &encode_error_response(ErrorCode::TenantOverloaded),
                            tele,
                        ) {
                            break;
                        }
                        continue;
                    }
                }
                // The tracing context: client-supplied trace id when the
                // frame carried one, server-minted (odd) otherwise. Decode
                // covers frame receipt → canonical sets.
                let ctx = match client_trace {
                    Some(id) => RequestCtx::with_trace_id(id),
                    None => RequestCtx::mint(),
                };
                let sets: Vec<ElementSet> =
                    queries.into_iter().map(|q| q.canonicalize()).collect();
                let set_size = sets.iter().map(|s| s.len()).max().unwrap_or(0) as u32;
                // Request/stage metrics go to the resident's collection-
                // labeled telemetry in registry mode; the server-level tele
                // keeps connection and byte counters either way.
                let ftele = resident.as_ref().map(|r| r.tele()).unwrap_or(tele);
                let decode = started.elapsed();
                ctx.record_stage(Stage::Decode, decode);
                ftele.record_stage(Stage::Decode, decode);
                let admit_start = Instant::now();
                let tickets = backend.submit_wire_traced(sets, Some(Arc::clone(&ctx)));
                let admitted = admit_start.elapsed();
                ctx.record_stage(Stage::Admission, admitted);
                ftele.record_stage(Stage::Admission, admitted);
                let outcomes: Vec<WireOutcome> = tickets
                    .into_iter()
                    .map(|ticket| ticket().map_err(ErrorCode::Serve))
                    .collect();
                let fallback =
                    outcomes.iter().any(|o| matches!(o, Ok(r) if r.fallback.is_some()));
                let bound_miss = outcomes.iter().any(|o| matches!(o, Ok(r) if r.bound_miss));
                let encode_start = Instant::now();
                let payload = encode_response_batch(&outcomes);
                let encoded = encode_start.elapsed();
                ctx.record_stage(Stage::Encode, encoded);
                ftele.record_stage(Stage::Encode, encoded);
                let ok = write_response_to(&mut stream, &frame, kind, &payload, tele);
                let total = started.elapsed();
                ftele.record_request(task.label(), total);
                if setlearn_obs::tracing_on() {
                    let tracer = setlearn_obs::tracer();
                    let dur_us = total.as_micros().min(u64::MAX as u128) as u64;
                    tracer.push_span(
                        "net_request",
                        tracer.now_us().saturating_sub(dur_us),
                        vec![
                            Field::text("task", task.label()),
                            Field::text("trace_id", &ctx.trace_id.to_string()),
                            Field::num("batch", outcomes.len() as f64),
                        ],
                    );
                }
                let total_us = total.as_micros().min(u64::MAX as u128) as u64;
                if shared.slow_log.is_slow(total_us) {
                    shared.slow_log.record(SlowQueryRecord {
                        trace_id: ctx.trace_id,
                        task: task.label().to_string(),
                        total_us,
                        set_size,
                        shard_count: backend.shards(),
                        fallback,
                        bound_miss,
                        stages: ctx.breakdown(),
                    });
                }
                if !ok {
                    break;
                }
            }
        }
    }
    tele.connection_closed();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// Transport or protocol failure (including frame-level refusals from
    /// the server, surfaced as [`ProtoError::Remote`]).
    Proto(ProtoError),
    /// The response echoed a different request id than the one sent —
    /// the stream is out of sync.
    IdMismatch {
        /// Id this client sent.
        sent: u64,
        /// Id the response carried.
        got: u64,
    },
    /// The response carried a different kind byte than the request.
    KindMismatch {
        /// Kind this client sent.
        sent: u8,
        /// Kind the response carried.
        got: u8,
    },
    /// The response answered a different number of queries than were asked.
    CountMismatch {
        /// Queries sent.
        sent: usize,
        /// Outcomes received.
        got: usize,
    },
    /// A single-query convenience call was answered with a per-query error.
    Query(ErrorCode),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Proto(e) => write!(f, "{e}"),
            NetError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
            NetError::KindMismatch { sent, got } => {
                write!(f, "response kind 0x{got:02x} does not match request kind 0x{sent:02x}")
            }
            NetError::CountMismatch { sent, got } => {
                write!(f, "asked {sent} queries, got {got} outcomes")
            }
            NetError::Query(code) => write!(f, "query refused: {code}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Proto(ProtoError::Io(e))
    }
}

/// A blocking `SLP1` client over one TCP connection. This is the reference
/// implementation of the protocol's client side — the CLI `client`
/// subcommand is a thin wrapper around it.
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    max_frame_bytes: usize,
    collection: Option<String>,
}

impl fmt::Debug for NetClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetClient").field("next_id", &self.next_id).finish_non_exhaustive()
    }
}

impl NetClient {
    /// Connects with 30s read / 10s write timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream, next_id: 1, max_frame_bytes: DEFAULT_MAX_FRAME_BYTES, collection: None })
    }

    /// Addresses every subsequent frame at the named collection on a
    /// multi-tenant server: frames are encoded as `SLP1` v2 with the
    /// collection id riding the payload. With `None` (the default) the
    /// client speaks plain v1 — bit-for-bit what pre-registry clients sent —
    /// and a multi-tenant server routes it to its default collection.
    pub fn set_collection(&mut self, collection: Option<String>) {
        self.collection = collection;
    }

    /// Builder-style [`NetClient::set_collection`].
    pub fn with_collection(mut self, collection: impl Into<String>) -> Self {
        self.collection = Some(collection.into());
        self
    }

    /// Round-trips one frame and validates the echo invariants.
    fn roundtrip(&mut self, kind: u8, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = match &self.collection {
            Some(collection) => encode_frame_v2(kind, id, Some(collection), payload),
            None => encode_frame(kind, id, payload),
        };
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        let frame = read_frame(&mut self.stream, self.max_frame_bytes)?;
        if frame.id != id {
            return Err(NetError::IdMismatch { sent: id, got: frame.id });
        }
        if frame.kind != kind {
            return Err(NetError::KindMismatch { sent: kind, got: frame.kind });
        }
        Ok(frame.payload)
    }

    /// Liveness probe: sends a ping frame, succeeds iff the server answers.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let payload = self.roundtrip(KIND_PING, &[])?;
        decode_response_batch(&payload)?;
        Ok(())
    }

    /// Sends one query batch for `task`; returns one outcome per query in
    /// order. A shed/panicked query is an `Err(ErrorCode)` *inside* the
    /// vector; a frame-level refusal (wrong task, malformed frame) is a
    /// [`NetError::Proto`] with [`ProtoError::Remote`].
    pub fn query_batch(
        &mut self,
        task: WireTask,
        queries: &[QueryRequest],
    ) -> Result<Vec<WireOutcome>, NetError> {
        self.query_batch_traced(task, queries, None)
    }

    /// [`NetClient::query_batch`] with a client-supplied trace id riding the
    /// frame: the server adopts it for its stage breakdown, spans, and
    /// slow-query records, so one id follows the request end to end. Needs a
    /// server new enough to understand the trailing-id extension.
    pub fn query_batch_traced(
        &mut self,
        task: WireTask,
        queries: &[QueryRequest],
        trace_id: Option<u64>,
    ) -> Result<Vec<WireOutcome>, NetError> {
        let payload =
            self.roundtrip(task.code(), &encode_request_batch_traced(queries, trace_id))?;
        let outcomes = decode_response_batch(&payload)?;
        if outcomes.len() != queries.len() {
            return Err(NetError::CountMismatch { sent: queries.len(), got: outcomes.len() });
        }
        Ok(outcomes)
    }

    /// Fetches the server's metrics snapshot (or slow-query log) in the
    /// requested format: Prometheus exposition text, a JSON document, or
    /// JSONL slow-query records. Servers predating the stats frame answer
    /// [`ErrorCode::AdminUnsupported`] (via [`ProtoError::Remote`]).
    pub fn stats(&mut self, format: StatsFormat) -> Result<String, NetError> {
        let payload = self.roundtrip(KIND_STATS, &encode_stats_request(format))?;
        Ok(decode_stats_reply(&payload)?)
    }

    /// Fetches the server's readiness verdict and its evidence.
    pub fn health(&mut self) -> Result<HealthReport, NetError> {
        let payload = self.roundtrip(KIND_HEALTH, &[])?;
        Ok(decode_health_report(&payload)?)
    }

    /// [`NetClient::health`] over a v2 frame even when no collection is
    /// set (an empty collection id routes to the default): the reply then
    /// carries the tenant-state extension — resident-collection count and
    /// per-collection pending-ingest — which v1 replies omit for byte
    /// compatibility.
    pub fn health_extended(&mut self) -> Result<HealthReport, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = encode_frame_v2(KIND_HEALTH, id, self.collection.as_deref(), &[]);
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        let frame = read_frame(&mut self.stream, self.max_frame_bytes)?;
        if frame.id != id {
            return Err(NetError::IdMismatch { sent: id, got: frame.id });
        }
        if frame.kind != KIND_HEALTH {
            return Err(NetError::KindMismatch { sent: KIND_HEALTH, got: frame.kind });
        }
        Ok(decode_health_report(&frame.payload)?)
    }

    /// Single-query convenience over [`NetClient::query_batch`].
    pub fn query(
        &mut self,
        task: WireTask,
        query: QueryRequest,
    ) -> Result<QueryResponse, NetError> {
        let mut outcomes = self.query_batch(task, std::slice::from_ref(&query))?;
        match outcomes.pop() {
            Some(Ok(response)) => Ok(response),
            Some(Err(code)) => Err(NetError::Query(code)),
            None => Err(NetError::CountMismatch { sent: 1, got: 0 }),
        }
    }

    /// Durably inserts a set into the served mutable collection. The ack
    /// means the record is fsync'd in the server's WAL. Fails with
    /// [`ErrorCode::IngestUnsupported`] (via [`ProtoError::Remote`]) when
    /// the server serves an immutable model.
    pub fn insert(&mut self, elements: Vec<u32>) -> Result<IngestAck, NetError> {
        self.ingest(IngestRequest { delete: false, elements })
    }

    /// Durably deletes one occurrence of a set. See [`NetClient::insert`].
    pub fn delete(&mut self, elements: Vec<u32>) -> Result<IngestAck, NetError> {
        self.ingest(IngestRequest { delete: true, elements })
    }

    fn ingest(&mut self, request: IngestRequest) -> Result<IngestAck, NetError> {
        let payload = self.roundtrip(KIND_INGEST, &encode_ingest_request(&request))?;
        Ok(decode_ingest_ack(&payload)?)
    }

    /// Asks the server to drain and exit. Fails with
    /// [`ErrorCode::ShutdownNotAllowed`] (via [`ProtoError::Remote`]) unless
    /// the server enables remote shutdown.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        let payload = self.roundtrip(KIND_SHUTDOWN, &[])?;
        decode_response_batch(&payload)?;
        Ok(())
    }

    /// Lists the collections a multi-tenant server knows about — resident
    /// and cold alike. Single-tenant servers answer
    /// [`ErrorCode::AdminUnsupported`] (via [`ProtoError::Remote`]).
    pub fn collections(&mut self) -> Result<Vec<CollectionInfo>, NetError> {
        let payload = self.roundtrip(KIND_COLLECTIONS, &[])?;
        Ok(decode_collections_reply(&payload)?)
    }

    /// Re-admits a previously detached collection (validating it still
    /// exists on disk); loading stays lazy until the first query arrives.
    pub fn attach_collection(&mut self, name: &str) -> Result<(), NetError> {
        let payload = self.roundtrip(KIND_ATTACH, &encode_collection_name(name))?;
        decode_admin_ack(&payload)?;
        Ok(())
    }

    /// Unloads a collection and refuses further frames addressing it until
    /// re-attached. Fails with [`ErrorCode::IngestRejected`] while the
    /// collection has pending WAL ops or a compaction in flight.
    pub fn detach_collection(&mut self, name: &str) -> Result<(), NetError> {
        let payload = self.roundtrip(KIND_DETACH, &encode_collection_name(name))?;
        decode_admin_ack(&payload)?;
        Ok(())
    }
}
