//! Background model refresh: a daemon thread that watches a
//! [`DriftMonitor`] and, when the retrain signal fires, rebuilds the task
//! and publishes it through the runtime's [`HotSwap`] slot — zero downtime,
//! no torn reads, serve workers pick the new model up at their next batch.

use crate::hotswap::HotSwap;
use crate::task::ServeTask;
use crate::telemetry::RuntimeTele;
use setlearn::monitor::DriftMonitor;
use setlearn::RetrainReason;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Refresh-daemon tuning.
#[derive(Debug, Clone)]
pub struct RefreshConfig {
    /// How often the monitor is polled for the retrain signal.
    pub poll_interval: Duration,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig { poll_interval: Duration::from_millis(50) }
    }
}

/// What the rebuild closure returns: the replacement task plus the new
/// accuracy baseline the monitor should adopt.
pub struct Rebuilt<T> {
    /// The freshly trained task to publish.
    pub task: T,
    /// New baseline q-error for [`DriftMonitor::reset`].
    pub baseline_q_error: f64,
}

/// Handle to a running refresh daemon; stop it with
/// [`RefreshHandle::stop`] (dropping also stops it).
pub struct RefreshHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    swaps: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl RefreshHandle {
    /// Number of models the daemon has published.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Signals the daemon to exit and joins it.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for RefreshHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Spawns a refresh daemon over `model`.
///
/// Every `config.poll_interval` the daemon checks
/// [`DriftMonitor::should_retrain`]; when a reason fires it calls
/// `rebuild(reason, &current_snapshot)`. A `Some(Rebuilt)` is published
/// atomically and the monitor adopts the new baseline; a `None` (rebuild
/// declined or failed) leaves the old model serving and the monitor
/// untouched, so the signal stays up and the next poll retries.
///
/// The monitor is shared behind a mutex because serve-side accuracy
/// observers ([`DriftMonitor::observe`], [`DriftMonitor::record_fallback`])
/// mutate it from other threads; the daemon holds the lock only to read the
/// signal and to reset after a successful publish — never across `rebuild`,
/// so retraining (which can take seconds) does not stall observers.
pub fn spawn_refresh<T, F>(
    model: Arc<HotSwap<T>>,
    monitor: Arc<Mutex<DriftMonitor>>,
    mut rebuild: F,
    config: RefreshConfig,
) -> RefreshHandle
where
    T: ServeTask,
    F: FnMut(RetrainReason, &T) -> Option<Rebuilt<T>> + Send + 'static,
{
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let swaps = Arc::new(AtomicU64::new(0));
    let stop2 = Arc::clone(&stop);
    let swaps2 = Arc::clone(&swaps);
    let tele = RuntimeTele::new(T::NAME);
    let thread = std::thread::spawn(move || {
        let (lock, cvar) = &*stop2;
        loop {
            // Interruptible sleep: a stop request cuts the poll short.
            {
                let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
                let (guard, _) = cvar
                    .wait_timeout_while(guard, config.poll_interval, |stopped| !*stopped)
                    .unwrap_or_else(|e| e.into_inner());
                if *guard {
                    return;
                }
            }
            let reason = {
                let monitor = monitor.lock().unwrap_or_else(|e| e.into_inner());
                monitor.should_retrain()
            };
            let Some(reason) = reason else { continue };
            // Retrain against the currently-published snapshot, without
            // holding the monitor lock (observers keep flowing).
            let current = model.load();
            if let Some(rebuilt) = rebuild(reason, &current) {
                let version = model.publish(rebuilt.task);
                swaps2.fetch_add(1, Ordering::Relaxed);
                tele.record_swap(version, reason.label());
                let mut monitor = monitor.lock().unwrap_or_else(|e| e.into_inner());
                monitor.reset(rebuilt.baseline_q_error);
                monitor.publish_metrics();
            }
        }
    });
    RefreshHandle { stop, swaps, thread: Some(thread) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn::monitor::MonitorConfig;

    struct Echo(u64);
    impl ServeTask for Echo {
        type Request = u64;
        type Response = u64;
        const NAME: &'static str = "test_echo";
        fn serve_batch(&self, requests: &[u64]) -> Vec<u64> {
            requests.iter().map(|r| r + self.0).collect()
        }
    }

    fn monitor_with_fallback_trigger(max_fallbacks: usize) -> DriftMonitor {
        DriftMonitor::new(
            1.1,
            MonitorConfig { max_fallbacks, ..MonitorConfig::default() },
        )
    }

    #[test]
    fn retrain_signal_publishes_a_new_model_and_resets_the_monitor() {
        let model = Arc::new(HotSwap::new(Echo(0)));
        let monitor = Arc::new(Mutex::new(monitor_with_fallback_trigger(3)));
        let handle = spawn_refresh(
            Arc::clone(&model),
            Arc::clone(&monitor),
            |reason, old| {
                assert_eq!(reason, RetrainReason::ServeFallbacks);
                Some(Rebuilt { task: Echo(old.0 + 1000), baseline_q_error: 1.2 })
            },
            RefreshConfig { poll_interval: Duration::from_millis(5) },
        );
        for _ in 0..3 {
            monitor.lock().unwrap().record_fallback();
        }
        // Wait for the daemon to notice and publish.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while model.version() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(model.version(), 1, "daemon published the rebuilt model");
        assert_eq!(model.load().0, 1000);
        assert_eq!(handle.swaps(), 1);
        let snap = monitor.lock().unwrap().snapshot();
        assert_eq!(snap.pending_fallbacks, 0, "monitor was reset");
        assert_eq!(snap.baseline_q_error, 1.2);
        handle.stop();
    }

    #[test]
    fn declined_rebuild_leaves_the_old_model_serving() {
        let model = Arc::new(HotSwap::new(Echo(7)));
        let monitor = Arc::new(Mutex::new(monitor_with_fallback_trigger(1)));
        monitor.lock().unwrap().record_fallback();
        let handle = spawn_refresh(
            Arc::clone(&model),
            Arc::clone(&monitor),
            |_, _| None,
            RefreshConfig { poll_interval: Duration::from_millis(5) },
        );
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(model.version(), 0, "nothing published");
        assert_eq!(model.load().0, 7);
        // The signal is still up (monitor untouched), so a later successful
        // rebuild would still fire.
        assert!(monitor.lock().unwrap().should_retrain().is_some());
        handle.stop();
    }

    #[test]
    fn stop_joins_promptly_even_with_a_long_poll_interval() {
        let model = Arc::new(HotSwap::new(Echo(0)));
        let monitor = Arc::new(Mutex::new(monitor_with_fallback_trigger(1000)));
        let handle = spawn_refresh(
            model,
            monitor,
            |_, _| None,
            RefreshConfig { poll_interval: Duration::from_secs(3600) },
        );
        let started = std::time::Instant::now();
        handle.stop();
        assert!(started.elapsed() < Duration::from_secs(5), "stop did not block on the poll");
    }
}
