//! Typed serving errors.

use std::fmt;

/// Why a request was not answered by the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue was full and the request was shed at admission
    /// (backpressure instead of unbounded buffering). Clients should retry
    /// with backoff or route to a replica.
    Overloaded,
    /// The runtime is draining: no new requests are admitted, but requests
    /// already queued will still be answered.
    ShuttingDown,
    /// The worker that owned this request disappeared before producing an
    /// answer (its response channel was dropped). Should not happen in a
    /// healthy runtime.
    WorkerLost,
    /// The task panicked while serving the batch this request was part of.
    /// The worker survives (the panic is caught) and the whole batch is
    /// failed with this error.
    TaskPanicked,
}

impl ServeError {
    /// Stable snake_case name used as the `reason` metric label.
    pub fn label(self) -> &'static str {
        match self {
            ServeError::Overloaded => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::WorkerLost => "worker_lost",
            ServeError::TaskPanicked => "task_panicked",
        }
    }

    /// Stable one-byte wire code, so remote clients can distinguish shed
    /// from panic from worker-lost without parsing strings. Codes 1–15 are
    /// reserved for serve errors; the `SLP1` protocol layer uses 16+ for its
    /// own errors.
    pub fn code(self) -> u8 {
        match self {
            ServeError::Overloaded => 1,
            ServeError::ShuttingDown => 2,
            ServeError::WorkerLost => 3,
            ServeError::TaskPanicked => 4,
        }
    }

    /// Decodes a wire code written by [`ServeError::code`].
    pub fn from_code(code: u8) -> Option<ServeError> {
        match code {
            1 => Some(ServeError::Overloaded),
            2 => Some(ServeError::ShuttingDown),
            3 => Some(ServeError::WorkerLost),
            4 => Some(ServeError::TaskPanicked),
            _ => None,
        }
    }

    /// The closest [`std::io::ErrorKind`]; used by
    /// the `From<ServeError> for std::io::Error` conversion so callers that
    /// must speak `io::Error` keep a machine-checkable kind instead of a
    /// stringified message.
    pub fn io_kind(self) -> std::io::ErrorKind {
        match self {
            // A shed request should be retried (with backoff) — the closest
            // stable kind is WouldBlock: "try again later".
            ServeError::Overloaded => std::io::ErrorKind::WouldBlock,
            ServeError::ShuttingDown => std::io::ErrorKind::ConnectionAborted,
            ServeError::WorkerLost => std::io::ErrorKind::BrokenPipe,
            ServeError::TaskPanicked => std::io::ErrorKind::Other,
        }
    }
}

impl From<ServeError> for std::io::Error {
    /// Structured conversion: the kind is mapped per variant and the typed
    /// error rides along as the source, so `io::Error::downcast` (or
    /// `get_ref`) recovers the exact [`ServeError`] instead of a string.
    fn from(e: ServeError) -> Self {
        std::io::Error::new(e.io_kind(), e)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request shed: queue full (overloaded)"),
            ServeError::ShuttingDown => write!(f, "runtime is shutting down"),
            ServeError::WorkerLost => write!(f, "serving worker lost before answering"),
            ServeError::TaskPanicked => write!(f, "task panicked while serving the batch"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(ServeError::Overloaded.label(), "overloaded");
        assert_eq!(ServeError::ShuttingDown.label(), "shutting_down");
        assert_eq!(ServeError::WorkerLost.label(), "worker_lost");
        assert_eq!(ServeError::TaskPanicked.label(), "task_panicked");
    }

    #[test]
    fn wire_codes_roundtrip_and_io_conversion_keeps_the_variant() {
        for e in [
            ServeError::Overloaded,
            ServeError::ShuttingDown,
            ServeError::WorkerLost,
            ServeError::TaskPanicked,
        ] {
            assert_eq!(ServeError::from_code(e.code()), Some(e));
            assert!(e.code() < 16, "serve codes stay below the protocol range");
            let io: std::io::Error = e.into();
            assert_eq!(io.kind(), e.io_kind());
            let recovered = io
                .get_ref()
                .and_then(|inner| inner.downcast_ref::<ServeError>())
                .copied();
            assert_eq!(recovered, Some(e), "typed source survives the conversion");
        }
        assert_eq!(ServeError::from_code(0), None);
        assert_eq!(ServeError::from_code(99), None);
    }

    #[test]
    fn displays_mention_the_cause() {
        assert!(ServeError::Overloaded.to_string().contains("queue full"));
        assert!(ServeError::TaskPanicked.to_string().contains("panicked"));
    }
}
