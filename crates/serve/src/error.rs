//! Typed serving errors.

use std::fmt;

/// Why a request was not answered by the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue was full and the request was shed at admission
    /// (backpressure instead of unbounded buffering). Clients should retry
    /// with backoff or route to a replica.
    Overloaded,
    /// The runtime is draining: no new requests are admitted, but requests
    /// already queued will still be answered.
    ShuttingDown,
    /// The worker that owned this request disappeared before producing an
    /// answer (its response channel was dropped). Should not happen in a
    /// healthy runtime.
    WorkerLost,
    /// The task panicked while serving the batch this request was part of.
    /// The worker survives (the panic is caught) and the whole batch is
    /// failed with this error.
    TaskPanicked,
}

impl ServeError {
    /// Stable snake_case name used as the `reason` metric label.
    pub fn label(self) -> &'static str {
        match self {
            ServeError::Overloaded => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::WorkerLost => "worker_lost",
            ServeError::TaskPanicked => "task_panicked",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request shed: queue full (overloaded)"),
            ServeError::ShuttingDown => write!(f, "runtime is shutting down"),
            ServeError::WorkerLost => write!(f, "serving worker lost before answering"),
            ServeError::TaskPanicked => write!(f, "task panicked while serving the batch"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(ServeError::Overloaded.label(), "overloaded");
        assert_eq!(ServeError::ShuttingDown.label(), "shutting_down");
        assert_eq!(ServeError::WorkerLost.label(), "worker_lost");
        assert_eq!(ServeError::TaskPanicked.label(), "task_panicked");
    }

    #[test]
    fn displays_mention_the_cause() {
        assert!(ServeError::Overloaded.to_string().contains("queue full"));
        assert!(ServeError::TaskPanicked.to_string().contains("panicked"));
    }
}
