//! Background WAL compaction: a daemon thread that watches a
//! [`MutableCollection`]'s pending delta and, once it crosses a size or age
//! threshold, retrains on the merged collection, folds the delta into a new
//! checkpoint, and publishes through the runtime's [`HotSwap`] slot — the
//! ingest-side counterpart of the drift-refresh daemon in
//! [`crate::refresh`], sharing its scheduler shape (interruptible
//! condvar-timed polling, stop-on-drop handle).
//!
//! The daemon holds no lock while retraining: mutations and queries keep
//! flowing, land above the compaction watermark, and survive the swap in
//! the overlay (see [`MutableCollection::begin_compaction`]).

use crate::hotswap::HotSwap;
use crate::task::StructureTask;
use crate::telemetry::RuntimeTele;
use setlearn::mutable::{DeltaMergeable, MutableCollection};
use setlearn_data::SetCollection;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Compaction-daemon tuning.
#[derive(Debug, Clone)]
pub struct CompactorConfig {
    /// How often the pending delta is checked against the thresholds.
    pub poll_interval: Duration,
    /// Compact once this many WAL records are pending.
    pub max_delta_ops: usize,
    /// Also compact once the oldest pending record is this old (off when
    /// `None`): bounds replay time after a crash even under a trickle of
    /// writes that never reaches `max_delta_ops`.
    pub max_delta_age: Option<Duration>,
}

impl Default for CompactorConfig {
    fn default() -> Self {
        CompactorConfig {
            poll_interval: Duration::from_millis(500),
            max_delta_ops: 1024,
            max_delta_age: None,
        }
    }
}

/// Handle to a running compaction daemon; stop it with
/// [`CompactorHandle::stop`] (dropping also stops it).
pub struct CompactorHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    compactions: Arc<AtomicU64>,
    compacting: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl CompactorHandle {
    /// Number of compactions the daemon has completed and published.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Whether a compaction (snapshot → retrain → fold → publish) is in
    /// flight right now. The registry's eviction pass checks this: a
    /// collection mid-compaction is never evicted.
    pub fn is_compacting(&self) -> bool {
        self.compacting.load(Ordering::SeqCst)
    }

    /// Signals the daemon to exit and joins it.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Spawns a compaction daemon over `collection`, publishing each completed
/// compaction through `slot`.
///
/// Every `config.poll_interval` the daemon compares
/// [`MutableCollection::delta_stats`] against the thresholds; when one
/// trips it snapshots the merged collection, calls `rebuild(&merged)`
/// (which must retrain **and durably checkpoint** the new model+collection
/// — the WAL watermark only advances afterwards, so a crash mid-retrain
/// replays the full delta against the old checkpoint), folds the delta via
/// [`MutableCollection::complete_compaction`], and publishes the collection
/// handle through `slot` so serve workers observe the version bump. A
/// `None` from `rebuild` (declined or failed) leaves the delta pending and
/// the old model serving; the next poll retries.
pub fn spawn_compactor<S, F>(
    collection: Arc<MutableCollection<S>>,
    slot: Arc<HotSwap<StructureTask<Arc<MutableCollection<S>>>>>,
    rebuild: F,
    config: CompactorConfig,
) -> CompactorHandle
where
    S: DeltaMergeable + Send + Sync + 'static,
    S::Output: Send + 'static,
    F: FnMut(&SetCollection) -> Option<S> + Send + 'static,
{
    spawn_compactor_inner(collection, slot, rebuild, config, None)
}

/// [`spawn_compactor`] for one named collection in a registry: the swap
/// counter the daemon bumps on publish carries a `collection` label.
pub fn spawn_compactor_named<S, F>(
    collection: Arc<MutableCollection<S>>,
    slot: Arc<HotSwap<StructureTask<Arc<MutableCollection<S>>>>>,
    rebuild: F,
    config: CompactorConfig,
    name: &str,
) -> CompactorHandle
where
    S: DeltaMergeable + Send + Sync + 'static,
    S::Output: Send + 'static,
    F: FnMut(&SetCollection) -> Option<S> + Send + 'static,
{
    spawn_compactor_inner(collection, slot, rebuild, config, Some(name))
}

fn spawn_compactor_inner<S, F>(
    collection: Arc<MutableCollection<S>>,
    slot: Arc<HotSwap<StructureTask<Arc<MutableCollection<S>>>>>,
    mut rebuild: F,
    config: CompactorConfig,
    name: Option<&str>,
) -> CompactorHandle
where
    S: DeltaMergeable + Send + Sync + 'static,
    S::Output: Send + 'static,
    F: FnMut(&SetCollection) -> Option<S> + Send + 'static,
{
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let compactions = Arc::new(AtomicU64::new(0));
    let compacting = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let compactions2 = Arc::clone(&compactions);
    let compacting2 = Arc::clone(&compacting);
    let tele = match name {
        Some(name) => RuntimeTele::named(S::NAME, name),
        None => RuntimeTele::new(S::NAME),
    };
    let thread = std::thread::spawn(move || {
        let (lock, cvar) = &*stop2;
        loop {
            {
                let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
                let (guard, _) = cvar
                    .wait_timeout_while(guard, config.poll_interval, |stopped| !*stopped)
                    .unwrap_or_else(|e| e.into_inner());
                if *guard {
                    return;
                }
            }
            let stats = collection.delta_stats();
            let over_size = stats.pending_ops >= config.max_delta_ops;
            let over_age = match (config.max_delta_age, stats.oldest_pending) {
                (Some(max), Some(age)) => age >= max,
                _ => false,
            };
            if stats.pending_ops == 0 || !(over_size || over_age) {
                continue;
            }
            // The in-flight flag pins the collection against registry
            // eviction from snapshot to publish; a scope guard would be
            // overkill since every early exit below funnels through one
            // `store(false)`.
            compacting2.store(true, Ordering::SeqCst);
            let published = (|| {
                let Ok(Some(snapshot)) = collection.begin_compaction() else { return None };
                if snapshot.merged.is_empty() {
                    // Nothing to train on (every row deleted): leave the
                    // delta pending; the structures cannot represent an
                    // empty base.
                    return None;
                }
                let structure = rebuild(&snapshot.merged)?;
                if collection.complete_compaction(structure, snapshot).is_err() {
                    // The watermark did not advance; replay still covers
                    // the delta, the retrained model is simply dropped.
                    return None;
                }
                Some(slot.publish(StructureTask::new(Arc::clone(&collection))))
            })();
            compacting2.store(false, Ordering::SeqCst);
            let Some(version) = published else { continue };
            compactions2.fetch_add(1, Ordering::Relaxed);
            tele.record_swap(version, "compaction");
        }
    });
    CompactorHandle { stop, compactions, compacting, thread: Some(thread) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn::mutable::OverlayAnswer;
    use setlearn::tasks::{LearnedSetStructure, QueryOutcome};
    use setlearn_data::ElementSet;
    use std::time::Instant;

    /// Exact-oracle cardinality "model": retraining is just re-freezing the
    /// merged collection.
    struct ExactCard(Arc<SetCollection>);
    impl LearnedSetStructure for ExactCard {
        type Output = f64;
        const NAME: &'static str = "cardinality";
        fn query(&self, q: &[u32]) -> QueryOutcome<f64> {
            QueryOutcome::clean(self.0.cardinality(q) as f64)
        }
        fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<f64>> {
            queries.iter().map(|q| self.query(q)).collect()
        }
        fn query_batch_parallel(
            &self,
            queries: &[ElementSet],
            _threads: usize,
        ) -> Vec<QueryOutcome<f64>> {
            self.query_batch(queries)
        }
    }
    impl DeltaMergeable for ExactCard {
        fn merge_delta(&self, model: QueryOutcome<f64>, d: &OverlayAnswer) -> QueryOutcome<f64> {
            model.map(|v| (v + d.cardinality_delta as f64).max(0.0))
        }
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("setlearn-compact-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        done()
    }

    #[test]
    fn threshold_crossing_compacts_and_publishes() {
        let dir = tmp_dir("threshold");
        let base = Arc::new(SetCollection::new(vec![vec![0, 1], vec![1, 2]], 4));
        let (mc, _) =
            MutableCollection::open(ExactCard(Arc::clone(&base)), base, &dir).unwrap();
        let collection = Arc::new(mc);
        let slot = Arc::new(HotSwap::new(StructureTask::new(Arc::clone(&collection))));
        let handle = spawn_compactor(
            Arc::clone(&collection),
            Arc::clone(&slot),
            |merged| Some(ExactCard(Arc::new(SetCollection::new(
                merged.sets().iter().map(|s| s.to_vec()).collect(),
                merged.num_elements(),
            )))),
            CompactorConfig {
                poll_interval: Duration::from_millis(5),
                max_delta_ops: 2,
                max_delta_age: None,
            },
        );
        // One op: below threshold, nothing compacts.
        collection.insert(&[2, 3]).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(handle.compactions(), 0);
        assert_eq!(collection.delta_stats().pending_ops, 1);

        // Second op crosses the threshold.
        collection.insert(&[0, 3]).unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || handle.compactions() >= 1),
            "compaction never fired"
        );
        assert!(wait_until(Duration::from_secs(5), || {
            collection.delta_stats().pending_ops == 0
        }));
        assert_eq!(collection.delta_stats().base_len, 4, "delta folded into the base");
        assert!(slot.version() >= 1, "published through the hot-swap slot");
        // Answers survive the fold.
        assert_eq!(collection.query(&[3]).value, 2.0);
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn age_threshold_compacts_a_trickle() {
        let dir = tmp_dir("age");
        let base = Arc::new(SetCollection::new(vec![vec![0, 1]], 4));
        let (mc, _) =
            MutableCollection::open(ExactCard(Arc::clone(&base)), base, &dir).unwrap();
        let collection = Arc::new(mc);
        let slot = Arc::new(HotSwap::new(StructureTask::new(Arc::clone(&collection))));
        let handle = spawn_compactor(
            Arc::clone(&collection),
            slot,
            |merged| Some(ExactCard(Arc::new(SetCollection::new(
                merged.sets().iter().map(|s| s.to_vec()).collect(),
                merged.num_elements(),
            )))),
            CompactorConfig {
                poll_interval: Duration::from_millis(5),
                max_delta_ops: usize::MAX,
                max_delta_age: Some(Duration::from_millis(30)),
            },
        );
        collection.insert(&[1, 2]).unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || handle.compactions() >= 1),
            "age trigger never fired"
        );
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn declined_rebuild_leaves_the_delta_pending() {
        let dir = tmp_dir("declined");
        let base = Arc::new(SetCollection::new(vec![vec![0, 1]], 4));
        let (mc, _) =
            MutableCollection::open(ExactCard(Arc::clone(&base)), base, &dir).unwrap();
        let collection = Arc::new(mc);
        let slot = Arc::new(HotSwap::new(StructureTask::new(Arc::clone(&collection))));
        let handle = spawn_compactor(
            Arc::clone(&collection),
            Arc::clone(&slot),
            |_| None,
            CompactorConfig {
                poll_interval: Duration::from_millis(5),
                max_delta_ops: 1,
                max_delta_age: None,
            },
        );
        collection.insert(&[1, 2]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(handle.compactions(), 0);
        assert_eq!(collection.delta_stats().pending_ops, 1, "delta stays pending");
        assert_eq!(slot.version(), 0, "nothing published");
        assert_eq!(collection.query(&[1, 2]).value, 1.0, "overlay still answers");
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_joins_promptly_even_with_a_long_poll_interval() {
        let dir = tmp_dir("stop");
        let base = Arc::new(SetCollection::new(vec![vec![0, 1]], 4));
        let (mc, _) =
            MutableCollection::open(ExactCard(Arc::clone(&base)), base, &dir).unwrap();
        let collection = Arc::new(mc);
        let slot = Arc::new(HotSwap::new(StructureTask::new(Arc::clone(&collection))));
        let handle = spawn_compactor(
            collection,
            slot,
            |_| None,
            CompactorConfig { poll_interval: Duration::from_secs(3600), ..Default::default() },
        );
        let started = Instant::now();
        handle.stop();
        assert!(started.elapsed() < Duration::from_secs(5), "stop did not block on the poll");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
