//! Bounded MPMC request queue with admission control.
//!
//! A `Mutex<VecDeque>` + `Condvar` pair: producers never block (a full queue
//! sheds the push — admission control happens at the door, not by buffering
//! without bound), consumers block until an item, the batching deadline, or
//! shutdown. The lock is held only for O(1) push/pop, so contention stays
//! proportional to request rate, not to serving time.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back to the caller.
    Full(T),
    /// The queue is closed (runtime draining); the item is handed back.
    Closed(T),
}

/// Outcome of a blocking pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The deadline passed with no item available.
    TimedOut,
    /// The queue is closed and fully drained — the consumer should exit.
    Drained,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` buffered items.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity.min(1024)), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of buffered items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking push: a full or closed queue refuses the item and hands
    /// it back, so the caller can surface a typed shed error.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained. Used by workers to fetch the head of a new batch.
    pub fn pop_blocking(&self) -> Pop<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Drained;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until an item is available, `deadline` passes, or the queue is
    /// closed and drained. Used by workers to top a batch up: once the first
    /// request of a batch is in hand, the worker is only willing to wait
    /// until the batching deadline for more.
    pub fn pop_until(&self, deadline: Instant) -> Pop<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Drained;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::TimedOut;
            }
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                return if inner.closed { Pop::Drained } else { Pop::TimedOut };
            }
        }
    }

    /// Pushes as many of `items` as free capacity allows under one lock
    /// acquisition (the producer-side mirror of [`BoundedQueue::drain_into`]).
    /// Returns `(admitted, closed)`: the number of items actually enqueued
    /// (a prefix of `items`, FIFO order preserved) and whether the queue was
    /// closed (in which case nothing is enqueued). Items beyond capacity are
    /// dropped here — callers surface those as sheds.
    pub fn try_push_many(&self, mut items: Vec<T>) -> (usize, bool) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return (0, true);
        }
        let space = self.capacity - inner.items.len();
        let take = space.min(items.len());
        inner.items.extend(items.drain(..take));
        drop(inner);
        match take {
            0 => {}
            1 => self.not_empty.notify_one(),
            _ => self.not_empty.notify_all(),
        }
        (take, false)
    }

    /// Moves up to `max` already-buffered items into `out` under a single
    /// lock acquisition, without blocking. Returns how many were taken.
    ///
    /// This is the batching fast path: once a worker holds the head of a
    /// batch, topping up item-by-item would pay one lock round-trip per
    /// request — exactly the per-request overhead batching exists to
    /// amortize. One bulk grab keeps lock traffic per *batch*, not per
    /// request, which matters most when several workers contend.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let take = inner.items.len().min(max);
        out.extend(inner.items.drain(..take));
        take
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`];
    /// already-buffered items remain poppable (graceful drain). Wakes every
    /// blocked consumer.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Number of currently buffered items.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert!(matches!(q.pop_blocking(), Pop::Item(1)));
        assert!(matches!(q.pop_blocking(), Pop::Item(2)));
    }

    #[test]
    fn full_queue_sheds_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(PushError::Full(item)) => assert_eq!(item, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping frees a slot.
        assert!(matches!(q.pop_blocking(), Pop::Item("a")));
        q.try_push("c").unwrap();
    }

    #[test]
    fn closed_queue_refuses_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert!(matches!(q.pop_blocking(), Pop::Item(1)));
        assert!(matches!(q.pop_blocking(), Pop::Drained));
    }

    #[test]
    fn try_push_many_admits_a_prefix_and_sheds_the_rest() {
        let q = BoundedQueue::new(3);
        q.try_push(0).unwrap();
        let (admitted, closed) = q.try_push_many(vec![1, 2, 3, 4]);
        assert_eq!((admitted, closed), (2, false));
        for want in 0..3 {
            assert!(matches!(q.pop_blocking(), Pop::Item(v) if v == want));
        }
        assert!(q.is_empty());
        q.close();
        assert_eq!(q.try_push_many(vec![9]), (0, true));
    }

    #[test]
    fn drain_into_takes_at_most_max_in_fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.drain_into(&mut out, 10), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.drain_into(&mut out, 10), 0);
        assert_eq!(q.drain_into(&mut out, 0), 0);
    }

    #[test]
    fn pop_until_times_out() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let deadline = Instant::now() + Duration::from_millis(10);
        assert!(matches!(q.pop_until(deadline), Pop::TimedOut));
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || match q2.pop_blocking() {
            Pop::Item(v) => v,
            other => panic!("expected item, got {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || matches!(q2.pop_blocking(), Pop::Drained));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
