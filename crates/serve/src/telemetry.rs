//! Runtime telemetry: cached handles into the global
//! [`setlearn_obs::MetricsRegistry`], resolved once per runtime and recorded
//! through lock-free on the batch path.
//!
//! Metric families (all labeled `task="…"`; shards of a sharded runtime
//! additionally carry `shard="…"`):
//!
//! - `setlearn_serve_queue_depth` — requests buffered right after each
//!   batch was taken (gauge)
//! - `setlearn_serve_batch_size` — requests per executed batch (histogram)
//! - `setlearn_serve_queue_wait_seconds` — admission → dequeue wait per
//!   request (histogram)
//! - `setlearn_serve_batch_seconds` — `serve_batch` execution time
//!   (histogram)
//! - `setlearn_serve_completed_total` — requests answered (counter)
//! - `setlearn_serve_shed_total` — requests refused at admission (counter)
//! - `setlearn_serve_batches_total` — batches executed (counter)
//! - `setlearn_serve_swaps_total` — model hot-swaps published (counter)
//!
//! At [`setlearn_obs::TelemetryLevel::Full`] every executed batch records a
//! `serve_batch` span (fields: `task`, `batch`, `version`); every hot-swap
//! records a `model_swap` event at the default `Metrics` level (swaps are
//! rare and operationally interesting).

use setlearn_obs::{Counter, Field, Gauge, Histogram, Stage, LATENCY_BOUNDS, STAGES, STAGE_COUNT};
use std::sync::Arc;
use std::time::Duration;

/// Batch-size buckets: powers of two up to 512 requests.
pub const BATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

/// Cached handles into the `setlearn_request_stage_seconds` histogram
/// family: one series per [`Stage`], labelled `task` + `stage` (plus any
/// extra labels the owner carries, e.g. `shard`). This is the per-stage
/// latency breakdown a live scrape exposes.
pub(crate) struct StageTele {
    handles: [Arc<Histogram>; STAGE_COUNT],
}

impl StageTele {
    pub(crate) fn new(base: &[(&str, &str)]) -> Self {
        let m = setlearn_obs::metrics();
        let handles = STAGES.map(|stage| {
            let mut labels: Vec<(&str, &str)> = base.to_vec();
            labels.push(("stage", stage.label()));
            m.histogram_with("setlearn_request_stage_seconds", &labels, LATENCY_BOUNDS)
        });
        StageTele { handles }
    }

    pub(crate) fn record(&self, stage: Stage, duration: Duration) {
        if setlearn_obs::metrics_on() {
            self.handles[stage as usize].observe_duration(duration);
        }
    }
}

/// Cached metric handles for one serving runtime.
pub(crate) struct RuntimeTele {
    task: &'static str,
    queue_depth: Arc<Gauge>,
    batch_size: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    batch_seconds: Arc<Histogram>,
    completed: Arc<Counter>,
    shed: Arc<Counter>,
    batches: Arc<Counter>,
    swaps: Arc<Counter>,
    stages: StageTele,
}

impl RuntimeTele {
    pub(crate) fn new(task: &'static str) -> Self {
        Self::with_labels(task, &[("task", task)])
    }

    /// Handles for a runtime serving one named collection in a registry:
    /// every family gains a `collection` label. Cardinality of the label set
    /// is bounded by the registry's resident budget plus the obs registry's
    /// `MAX_SERIES_PER_FAMILY` overflow collapse.
    pub(crate) fn named(task: &'static str, collection: &str) -> Self {
        Self::with_labels(task, &[("task", task), ("collection", collection)])
    }

    /// Handles for one shard of a sharded runtime: every family gains a
    /// `shard` label so per-shard queue depth, latency, and swap counters
    /// stay distinguishable in the exposition.
    pub(crate) fn sharded(task: &'static str, shard: usize) -> Self {
        let shard = shard.to_string();
        Self::with_labels(task, &[("task", task), ("shard", &shard)])
    }

    /// Handles for one shard of a named collection's sharded runtime:
    /// `task` + `collection` + `shard`.
    pub(crate) fn named_sharded(task: &'static str, collection: &str, shard: usize) -> Self {
        let shard = shard.to_string();
        Self::with_labels(task, &[("task", task), ("collection", collection), ("shard", &shard)])
    }

    fn with_labels(task: &'static str, l: &[(&str, &str)]) -> Self {
        let m = setlearn_obs::metrics();
        RuntimeTele {
            task,
            queue_depth: m.gauge_with("setlearn_serve_queue_depth", l),
            batch_size: m.histogram_with("setlearn_serve_batch_size", l, BATCH_BOUNDS),
            queue_wait: m.histogram_with("setlearn_serve_queue_wait_seconds", l, LATENCY_BOUNDS),
            batch_seconds: m.histogram_with("setlearn_serve_batch_seconds", l, LATENCY_BOUNDS),
            completed: m.counter_with("setlearn_serve_completed_total", l),
            shed: m.counter_with("setlearn_serve_shed_total", l),
            batches: m.counter_with("setlearn_serve_batches_total", l),
            swaps: m.counter_with("setlearn_serve_swaps_total", l),
            stages: StageTele::new(l),
        }
    }

    /// Records one executed batch: size/depth/wait/duration metrics, the
    /// worker-side stage histograms (queue / batch_wait / inference), plus
    /// (at `Full`) a `serve_batch` span.
    pub(crate) fn record_batch(
        &self,
        batch: usize,
        queue_depth: usize,
        waits: &[Duration],
        batch_wait: Duration,
        duration: Duration,
        version: u64,
    ) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        self.batches.inc();
        self.completed.add(batch as u64);
        self.batch_size.observe(batch as f64);
        self.queue_depth.set(queue_depth as f64);
        self.batch_seconds.observe_duration(duration);
        self.stages.record(Stage::BatchWait, batch_wait);
        self.stages.record(Stage::Inference, duration);
        for wait in waits {
            self.queue_wait.observe_duration(*wait);
            self.stages.record(Stage::QueueWait, *wait);
        }
        if setlearn_obs::tracing_on() {
            let tracer = setlearn_obs::tracer();
            let dur_us = duration.as_micros() as u64;
            let start_us = tracer.now_us().saturating_sub(dur_us);
            tracer.push_span(
                "serve_batch",
                start_us,
                vec![
                    Field::text("task", self.task),
                    Field::num("batch", batch as f64),
                    Field::num("version", version as f64),
                ],
            );
        }
    }

    /// Records one request refused at admission.
    pub(crate) fn record_shed(&self) {
        if setlearn_obs::metrics_on() {
            self.shed.inc();
        }
    }

    /// Records one model hot-swap (rare: event at the default level).
    pub(crate) fn record_swap(&self, version: u64, reason: &str) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        self.swaps.inc();
        setlearn_obs::tracer().push_event(
            "model_swap",
            vec![
                Field::text("task", self.task),
                Field::num("version", version as f64),
                Field::text("reason", reason),
            ],
        );
    }

}

/// Cached metric handles for the TCP front-end. Every family carries
/// `transport="tcp"` (plus `task` for the served task), so dashboards can
/// split remote traffic from in-process serving:
///
/// - `setlearn_net_connections` — live client connections (gauge)
/// - `setlearn_net_bytes_in_total` / `setlearn_net_bytes_out_total` —
///   frame bytes read/written, headers included (counters)
/// - `setlearn_net_request_seconds` — frame receipt → response written, per
///   query frame (histogram)
/// - `setlearn_net_ingest_seconds` — frame receipt → ack written, per
///   ingest frame, WAL fsync included (histogram)
/// - `setlearn_net_protocol_errors_total` — malformed/refused frames, with
///   a `code` label naming the [`crate::proto::ErrorCode`] (counter)
pub(crate) struct NetTele {
    task: &'static str,
    collection: Option<String>,
    connections: Arc<Gauge>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    request_seconds: Arc<Histogram>,
    ingest_seconds: Arc<Histogram>,
    stages: StageTele,
}

impl NetTele {
    pub(crate) fn new(task: &'static str) -> Self {
        Self::build(task, None)
    }

    /// Handles scoped to one named collection: every family (and the
    /// per-call protocol-error counter) gains a `collection` label. The
    /// registry builds one of these per resident collection; series growth
    /// is bounded by the obs registry's `MAX_SERIES_PER_FAMILY` collapse.
    pub(crate) fn for_collection(task: &'static str, collection: &str) -> Self {
        Self::build(task, Some(collection.to_string()))
    }

    fn build(task: &'static str, collection: Option<String>) -> Self {
        let m = setlearn_obs::metrics();
        let mut l: Vec<(&str, &str)> = vec![("transport", "tcp"), ("task", task)];
        // Frame-side stages (decode / admission / encode) carry the bare
        // task label, matching the worker-side stage series.
        let mut stage_labels: Vec<(&str, &str)> = vec![("task", task)];
        if let Some(name) = collection.as_deref() {
            l.push(("collection", name));
            stage_labels.push(("collection", name));
        }
        NetTele {
            task,
            connections: m.gauge_with("setlearn_net_connections", &l),
            bytes_in: m.counter_with("setlearn_net_bytes_in_total", &l),
            bytes_out: m.counter_with("setlearn_net_bytes_out_total", &l),
            request_seconds: m.histogram_with("setlearn_net_request_seconds", &l, LATENCY_BOUNDS),
            ingest_seconds: m.histogram_with("setlearn_net_ingest_seconds", &l, LATENCY_BOUNDS),
            stages: StageTele::new(&stage_labels),
            collection,
        }
    }

    /// Records one frame-side stage sample (decode, admission, or encode).
    pub(crate) fn record_stage(&self, stage: Stage, duration: Duration) {
        self.stages.record(stage, duration);
    }

    pub(crate) fn connection_opened(&self) {
        if setlearn_obs::metrics_on() {
            self.connections.add(1.0);
        }
    }

    pub(crate) fn connection_closed(&self) {
        if setlearn_obs::metrics_on() {
            self.connections.add(-1.0);
        }
    }

    pub(crate) fn record_bytes_in(&self, n: usize) {
        if setlearn_obs::metrics_on() {
            self.bytes_in.add(n as u64);
        }
    }

    pub(crate) fn record_bytes_out(&self, n: usize) {
        if setlearn_obs::metrics_on() {
            self.bytes_out.add(n as u64);
        }
    }

    /// Records one answered query frame (receipt → response on the wire).
    pub(crate) fn record_request(&self, task: &str, duration: Duration) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        debug_assert_eq!(task, self.task, "a handler serves exactly one task");
        self.request_seconds.observe_duration(duration);
    }

    /// Records one acknowledged ingest frame (receipt → ack on the wire,
    /// WAL fsync included). Ingest rides the served task's connection, so
    /// it gets its own histogram rather than the query one.
    pub(crate) fn record_ingest(&self, duration: Duration) {
        if setlearn_obs::metrics_on() {
            self.ingest_seconds.observe_duration(duration);
        }
    }

    /// Counts one refused frame under its stable error-code label. Resolved
    /// per call — refusals are rare, and the registry interns handles.
    pub(crate) fn record_protocol_error(&self, code: crate::proto::ErrorCode) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        let mut l: Vec<(&str, &str)> =
            vec![("transport", "tcp"), ("task", self.task), ("code", code.label())];
        if let Some(name) = self.collection.as_deref() {
            l.push(("collection", name));
        }
        setlearn_obs::metrics().counter_with("setlearn_net_protocol_errors_total", &l).inc();
    }
}
