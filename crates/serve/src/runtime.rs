//! The serving runtime: a worker pool draining the bounded request queue
//! with adaptive micro-batching.
//!
//! ## Batching semantics
//!
//! Each worker blocks for the head of a new batch, then tops the batch up
//! until either `max_batch` requests are in hand or `max_delay` has elapsed
//! since the head was dequeued — whichever comes first. Under light load
//! this degrades to batches of 1 with at most `max_delay` of added latency;
//! under heavy load batches fill instantly and the model's batched forward
//! pass amortizes embedding lookups and matmuls across the whole batch.
//!
//! ## Backpressure
//!
//! Admission control happens at [`ServeRuntime::submit`]: a full queue sheds
//! the request with [`ServeError::Overloaded`] instead of buffering without
//! bound, so memory stays bounded by `queue_capacity` and clients see
//! overload immediately rather than as unbounded latency.
//!
//! ## Shutdown
//!
//! [`ServeRuntime::shutdown`] closes the queue (new submissions fail with
//! [`ServeError::ShuttingDown`]), lets the workers drain every request
//! already admitted, then joins them — admitted requests are never dropped.

use crate::error::ServeError;
use crate::hotswap::HotSwap;
use crate::queue::{BoundedQueue, Pop, PushError};
use crate::request::RequestCtx;
use crate::task::ServeTask;
use crate::telemetry::RuntimeTele;
use setlearn_obs::Stage;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ServeRuntime`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub threads: usize,
    /// Maximum requests per batch (1 disables batching).
    pub max_batch: usize,
    /// Maximum time a worker waits to top up a non-full batch, counted from
    /// the moment the batch head was dequeued.
    pub max_delay: Duration,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            queue_capacity: 1024,
        }
    }
}

impl ServeConfig {
    /// Rejects degenerate configurations.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be positive".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be positive".into());
        }
        Ok(())
    }
}

/// Minimal oneshot rendezvous: a mutex-guarded slot plus a condvar, one
/// allocation per request (the `Arc`). On the submit/respond hot path this
/// is measurably cheaper than an `mpsc` channel pair — the per-request
/// dispatch cost is exactly what micro-batching exists to amortize, so the
/// runtime keeps its own floor low too.
struct OneshotSlot<R> {
    value: Mutex<Option<Result<R, ServeError>>>,
    ready: Condvar,
}

impl<R> OneshotSlot<R> {
    fn new() -> Arc<Self> {
        Arc::new(OneshotSlot { value: Mutex::new(None), ready: Condvar::new() })
    }

    /// First fill wins; later fills (e.g. the responder's drop guard after a
    /// successful send raced with nothing — defensive only) are ignored.
    fn fill(&self, result: Result<R, ServeError>) {
        let mut guard = self.value.lock().unwrap_or_else(|p| p.into_inner());
        if guard.is_none() {
            *guard = Some(result);
            drop(guard);
            self.ready.notify_one();
        }
    }
}

/// The worker-side half of a [`Ticket`]'s oneshot. If a worker dies before
/// answering (envelope dropped mid-flight), the drop guard fills
/// [`ServeError::WorkerLost`] so the waiting client never hangs.
struct Responder<R> {
    slot: Option<Arc<OneshotSlot<R>>>,
}

impl<R> Responder<R> {
    fn send(mut self, result: Result<R, ServeError>) {
        if let Some(slot) = self.slot.take() {
            slot.fill(result);
        }
    }
}

impl<R> Drop for Responder<R> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            slot.fill(Err(ServeError::WorkerLost));
        }
    }
}

/// One queued request plus its response slot, admission timestamp, and
/// (for wire requests) its shared tracing context.
struct Envelope<T: ServeTask> {
    request: T::Request,
    enqueued: Instant,
    responder: Responder<T::Response>,
    ctx: Option<Arc<RequestCtx>>,
}

/// Handle to one in-flight request; redeem it with [`Ticket::wait`].
pub struct Ticket<R> {
    slot: Arc<OneshotSlot<R>>,
}

impl<R> std::fmt::Debug for Ticket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl<R> Ticket<R> {
    /// Blocks until the runtime answers (or fails) this request.
    pub fn wait(self) -> Result<R, ServeError> {
        let mut guard = self.slot.value.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.slot.ready.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking poll; returns the ticket back while the answer is
    /// pending.
    pub fn try_wait(self) -> Result<Result<R, ServeError>, Ticket<R>> {
        {
            let mut guard = self.slot.value.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(result) = guard.take() {
                return Ok(result);
            }
        }
        Err(self)
    }
}

/// Runtime-local counters (distinct from the process-global metrics so
/// concurrent runtimes in one process don't blend).
#[derive(Debug, Default)]
pub struct ServeStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    panicked_batches: AtomicU64,
}

impl ServeStats {
    /// Requests admitted into the queue.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Requests answered (successfully or with a task panic error).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests refused at admission ([`ServeError::Overloaded`]).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Batches executed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Batches whose task panicked (caught; the batch failed with
    /// [`ServeError::TaskPanicked`]).
    pub fn panicked_batches(&self) -> u64 {
        self.panicked_batches.load(Ordering::Relaxed)
    }

    /// Mean requests per executed batch.
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            return 0.0;
        }
        self.completed() as f64 / batches as f64
    }
}

/// Final accounting returned by [`ServeRuntime::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches that panicked (caught).
    pub panicked_batches: u64,
    /// Model hot-swaps observed over the runtime's life.
    pub swaps: u64,
}

/// A concurrent serving runtime over one hot-swappable [`ServeTask`].
pub struct ServeRuntime<T: ServeTask> {
    queue: Arc<BoundedQueue<Envelope<T>>>,
    model: Arc<HotSwap<T>>,
    stats: Arc<ServeStats>,
    tele: Arc<RuntimeTele>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: ServeTask> ServeRuntime<T> {
    /// Starts `config.threads` workers serving `task`.
    ///
    /// # Panics
    /// If the configuration is degenerate (see [`ServeConfig::validate`]).
    pub fn start(task: T, config: ServeConfig) -> Self {
        Self::start_shared(Arc::new(HotSwap::new(task)), config)
    }

    /// Starts a runtime over an externally-owned [`HotSwap`] slot, so a
    /// refresh daemon (or test writer threads) can publish new models while
    /// the runtime serves.
    pub fn start_shared(model: Arc<HotSwap<T>>, config: ServeConfig) -> Self {
        Self::start_inner(model, config, None, None)
    }

    /// [`ServeRuntime::start`] for one named collection in a registry:
    /// every metric this runtime records carries a `collection` label
    /// alongside the task label.
    pub fn start_named(task: T, config: ServeConfig, collection: &str) -> Self {
        Self::start_inner(Arc::new(HotSwap::new(task)), config, None, Some(collection))
    }

    /// [`ServeRuntime::start_shared`] over an external slot for one named
    /// collection (the registry's mutable-serving path, where the compactor
    /// publishes into the slot).
    pub fn start_shared_named(
        model: Arc<HotSwap<T>>,
        config: ServeConfig,
        collection: &str,
    ) -> Self {
        Self::start_inner(model, config, None, Some(collection))
    }

    /// [`ServeRuntime::start_shared`] for one shard of a sharded deployment:
    /// every metric this runtime records carries a `shard` label alongside
    /// the task label.
    pub fn start_sharded(model: Arc<HotSwap<T>>, config: ServeConfig, shard: usize) -> Self {
        Self::start_inner(model, config, Some(shard), None)
    }

    /// One shard of a named collection's sharded deployment:
    /// `task` + `collection` + `shard` labels.
    pub fn start_named_sharded(
        model: Arc<HotSwap<T>>,
        config: ServeConfig,
        collection: &str,
        shard: usize,
    ) -> Self {
        Self::start_inner(model, config, Some(shard), Some(collection))
    }

    fn start_inner(
        model: Arc<HotSwap<T>>,
        config: ServeConfig,
        shard: Option<usize>,
        collection: Option<&str>,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid serve config: {e}");
        }
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let stats = Arc::new(ServeStats::default());
        let tele = Arc::new(match (collection, shard) {
            (Some(c), Some(s)) => RuntimeTele::named_sharded(T::NAME, c, s),
            (Some(c), None) => RuntimeTele::named(T::NAME, c),
            (None, Some(s)) => RuntimeTele::sharded(T::NAME, s),
            (None, None) => RuntimeTele::new(T::NAME),
        });
        let workers = (0..config.threads)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let model = Arc::clone(&model);
                let stats = Arc::clone(&stats);
                let tele = Arc::clone(&tele);
                let config = config.clone();
                std::thread::spawn(move || worker_loop(queue, model, stats, tele, config))
            })
            .collect();
        ServeRuntime { queue, model, stats, tele, workers }
    }

    /// Admits a request, returning a [`Ticket`] to redeem for the answer.
    /// Sheds with [`ServeError::Overloaded`] when the queue is full and
    /// [`ServeError::ShuttingDown`] once shutdown began.
    pub fn submit(&self, request: T::Request) -> Result<Ticket<T::Response>, ServeError> {
        let slot = OneshotSlot::new();
        let responder = Responder { slot: Some(Arc::clone(&slot)) };
        let envelope = Envelope { request, enqueued: Instant::now(), responder, ctx: None };
        match self.queue.try_push(envelope) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { slot })
            }
            Err(PushError::Full(_)) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                self.tele.record_shed();
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Bulk admission: enqueues the whole slice of requests under a single
    /// queue-lock acquisition and one shared admission timestamp, returning
    /// one [`Ticket`] outcome per request in order. Requests beyond the
    /// queue's free capacity are shed ([`ServeError::Overloaded`]); on a
    /// closed queue every request fails with [`ServeError::ShuttingDown`].
    ///
    /// Clients holding a vector of queries should prefer this over repeated
    /// [`ServeRuntime::submit`]: per-request lock round-trips are exactly
    /// the overhead micro-batching amortizes on the worker side, and this is
    /// the producer-side counterpart.
    pub fn submit_many<I>(&self, requests: I) -> Vec<Result<Ticket<T::Response>, ServeError>>
    where
        I: IntoIterator<Item = T::Request>,
    {
        self.submit_many_traced(requests.into_iter().map(|r| (r, None)))
    }

    /// [`ServeRuntime::submit_many`] with a per-request tracing context: the
    /// worker that serves each request records its queue-wait, batch-wait,
    /// and inference stages into the context. Requests without one
    /// (`None`) are served identically, just untraced.
    pub fn submit_many_traced<I>(
        &self,
        requests: I,
    ) -> Vec<Result<Ticket<T::Response>, ServeError>>
    where
        I: IntoIterator<Item = (T::Request, Option<Arc<RequestCtx>>)>,
    {
        let enqueued = Instant::now();
        let mut slots = Vec::new();
        let envelopes: Vec<Envelope<T>> = requests
            .into_iter()
            .map(|(request, ctx)| {
                let slot = OneshotSlot::new();
                slots.push(Arc::clone(&slot));
                Envelope { request, enqueued, responder: Responder { slot: Some(slot) }, ctx }
            })
            .collect();
        let (admitted, closed) = self.queue.try_push_many(envelopes);
        self.stats.submitted.fetch_add(admitted as u64, Ordering::Relaxed);
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                if i < admitted {
                    Ok(Ticket { slot })
                } else if closed {
                    Err(ServeError::ShuttingDown)
                } else {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    self.tele.record_shed();
                    Err(ServeError::Overloaded)
                }
            })
            .collect()
    }

    /// Submit + wait: the synchronous convenience path.
    pub fn call(&self, request: T::Request) -> Result<T::Response, ServeError> {
        self.submit(request)?.wait()
    }

    /// Publishes a new task version; in-flight batches finish on the old
    /// snapshot, subsequent batches serve the new one. Returns the version.
    pub fn swap(&self, task: T) -> u64 {
        let version = self.model.publish(task);
        self.tele.record_swap(version, "manual");
        version
    }

    /// The hot-swap slot (share it with a refresh daemon).
    pub fn model(&self) -> &Arc<HotSwap<T>> {
        &self.model
    }

    /// Live runtime counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Requests currently buffered.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Admission queue capacity (the shed threshold).
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Graceful drain: refuse new submissions, serve everything already
    /// admitted, join the workers, and return the final accounting.
    pub fn shutdown(mut self) -> ServeReport {
        self.queue.close();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside the caught serve call still
            // must not poison shutdown accounting.
            let _ = worker.join();
        }
        ServeReport {
            submitted: self.stats.submitted(),
            completed: self.stats.completed(),
            shed: self.stats.shed(),
            batches: self.stats.batches(),
            panicked_batches: self.stats.panicked_batches(),
            swaps: self.model.swap_count(),
        }
    }
}

impl<T: ServeTask> Drop for ServeRuntime<T> {
    fn drop(&mut self) {
        // `shutdown` drains `workers`; a plain drop still closes the queue
        // and joins so no worker outlives the runtime.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One worker: collect a batch, refresh the model snapshot, serve, respond.
fn worker_loop<T: ServeTask>(
    queue: Arc<BoundedQueue<Envelope<T>>>,
    model: Arc<HotSwap<T>>,
    stats: Arc<ServeStats>,
    tele: Arc<RuntimeTele>,
    config: ServeConfig,
) {
    let mut cached = model.cache();
    loop {
        // Head of the next batch: wait indefinitely (or until drain).
        let head = match queue.pop_blocking() {
            Pop::Item(envelope) => envelope,
            Pop::TimedOut => continue,
            Pop::Drained => return,
        };
        let head_at = Instant::now();
        let deadline = head_at + config.max_delay;
        let mut batch = Vec::with_capacity(config.max_batch.min(64));
        batch.push(head);
        // Bulk-grab whatever is already buffered (one lock per batch), then
        // top up item-by-item only while the micro-batch deadline allows.
        let room = config.max_batch - batch.len();
        queue.drain_into(&mut batch, room);
        while batch.len() < config.max_batch {
            match queue.pop_until(deadline) {
                Pop::Item(envelope) => {
                    batch.push(envelope);
                    let room = config.max_batch - batch.len();
                    queue.drain_into(&mut batch, room);
                }
                Pop::TimedOut => break,
                // Closed: serve what we have, then the outer loop exits.
                Pop::Drained => break,
            }
        }

        let dequeued = Instant::now();
        let batch_wait = dequeued.duration_since(head_at);
        let waits: Vec<Duration> =
            batch.iter().map(|e| dequeued.duration_since(e.enqueued)).collect();
        let mut requests = Vec::with_capacity(batch.len());
        let mut responders = Vec::with_capacity(batch.len());
        let mut ctxs = Vec::with_capacity(batch.len());
        for e in batch {
            requests.push(e.request);
            responders.push(e.responder);
            ctxs.push(e.ctx);
        }
        for (ctx, wait) in ctxs.iter().zip(&waits) {
            if let Some(ctx) = ctx {
                ctx.record_stage(Stage::QueueWait, *wait);
                ctx.record_stage(Stage::BatchWait, batch_wait);
            }
        }

        // Refresh the snapshot once per batch: one atomic load when no swap
        // happened, one mutex-guarded Arc clone when one did.
        let snapshot = Arc::clone(model.refresh(&mut cached));
        let version = cached.version();
        let started = Instant::now();
        // A panicking task fails its batch but never kills the worker: the
        // queue keeps draining and other batches are unaffected.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            snapshot.serve_batch(&requests)
        }));
        let duration = started.elapsed();

        for ctx in ctxs.iter().flatten() {
            ctx.record_stage(Stage::Inference, duration);
        }

        stats.batches.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(responses) if responses.len() == requests.len() => {
                stats.completed.fetch_add(responses.len() as u64, Ordering::Relaxed);
                tele.record_batch(responses.len(), queue.len(), &waits, batch_wait, duration, version);
                for (responder, response) in responders.into_iter().zip(responses) {
                    // A caller that dropped its ticket is not an error.
                    responder.send(Ok(response));
                }
            }
            Ok(responses) => {
                // Length contract violated: fail the batch loudly but keep
                // serving. (Counted like a panic — both are task bugs.)
                debug_assert_eq!(responses.len(), requests.len(), "serve_batch length contract");
                stats.panicked_batches.fetch_add(1, Ordering::Relaxed);
                for responder in responders {
                    responder.send(Err(ServeError::TaskPanicked));
                }
            }
            Err(_) => {
                stats.panicked_batches.fetch_add(1, Ordering::Relaxed);
                for responder in responders {
                    responder.send(Err(ServeError::TaskPanicked));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic toy task: doubles the request.
    struct Doubler;
    impl ServeTask for Doubler {
        type Request = u64;
        type Response = u64;
        const NAME: &'static str = "test_doubler";
        fn serve_batch(&self, requests: &[u64]) -> Vec<u64> {
            requests.iter().map(|r| r * 2).collect()
        }
    }

    /// Panics on request 13.
    struct Superstitious;
    impl ServeTask for Superstitious {
        type Request = u64;
        type Response = u64;
        const NAME: &'static str = "test_superstitious";
        fn serve_batch(&self, requests: &[u64]) -> Vec<u64> {
            assert!(!requests.contains(&13), "unlucky batch");
            requests.to_vec()
        }
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            threads: 2,
            max_batch: 8,
            max_delay: Duration::from_micros(100),
            queue_capacity: 64,
        }
    }

    #[test]
    fn answers_match_the_task() {
        // Queue sized for the whole burst: this test exercises correctness,
        // not shedding (overload has its own tests).
        let runtime =
            ServeRuntime::start(Doubler, ServeConfig { queue_capacity: 128, ..quick_config() });
        let tickets: Vec<_> = (0..100u64).map(|i| runtime.submit(i).unwrap()).collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.wait().unwrap(), i as u64 * 2);
        }
        let report = runtime.shutdown();
        assert_eq!(report.submitted, 100);
        assert_eq!(report.completed, 100);
        assert_eq!(report.shed, 0);
        assert!(report.batches <= 100);
    }

    #[test]
    fn submit_many_admits_in_order_and_sheds_the_overflow() {
        // One slow-to-start worker, tiny queue: the overflow is deterministic
        // because nothing can drain between admission and the length check.
        let runtime = ServeRuntime::start(
            Doubler,
            ServeConfig { threads: 1, queue_capacity: 4, ..quick_config() },
        );
        let outcomes = runtime.submit_many(0..10u64);
        assert_eq!(outcomes.len(), 10);
        let admitted = outcomes.iter().filter(|o| o.is_ok()).count();
        let shed = outcomes.iter().filter(|o| o.is_err()).count();
        // Admission is one atomic lock acquisition against an empty queue of
        // capacity 4: exactly the first 4 requests get in.
        assert_eq!(admitted, 4);
        assert_eq!(shed, 6);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(ticket) => assert_eq!(ticket.wait().unwrap(), i as u64 * 2),
                Err(e) => assert_eq!(e, ServeError::Overloaded),
            }
        }
        let report = runtime.shutdown();
        assert_eq!(report.shed, shed as u64);
        assert_eq!(report.submitted + report.shed, 10);
    }

    #[test]
    fn submit_many_after_shutdown_fails_every_request_typed() {
        let runtime = ServeRuntime::start(Doubler, quick_config());
        runtime.queue.close();
        for outcome in runtime.submit_many(0..3u64) {
            assert_eq!(outcome.unwrap_err(), ServeError::ShuttingDown);
        }
        runtime.shutdown();
    }

    #[test]
    fn call_is_submit_plus_wait() {
        let runtime = ServeRuntime::start(Doubler, quick_config());
        assert_eq!(runtime.call(21).unwrap(), 42);
        runtime.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let runtime = ServeRuntime::start(Doubler, quick_config());
        let tickets: Vec<_> = (0..50u64).map(|i| runtime.submit(i).unwrap()).collect();
        let report = runtime.shutdown();
        assert_eq!(report.completed, 50, "every admitted request was served");
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.wait().unwrap(), i as u64 * 2);
        }
    }

    #[test]
    fn submissions_after_shutdown_began_fail_typed() {
        let runtime = ServeRuntime::start(Doubler, quick_config());
        // Close the queue out from under the handle to simulate the race.
        runtime.queue.close();
        assert_eq!(runtime.submit(1).unwrap_err(), ServeError::ShuttingDown);
        runtime.shutdown();
    }

    #[test]
    fn task_panic_fails_the_batch_but_not_the_worker() {
        let runtime = ServeRuntime::start(
            Superstitious,
            ServeConfig { threads: 1, max_batch: 1, ..quick_config() },
        );
        assert_eq!(runtime.call(13).unwrap_err(), ServeError::TaskPanicked);
        // The worker survived and keeps serving.
        assert_eq!(runtime.call(7).unwrap(), 7);
        let report = runtime.shutdown();
        assert_eq!(report.panicked_batches, 1);
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn swap_changes_subsequent_answers() {
        struct Plus(u64);
        impl ServeTask for Plus {
            type Request = u64;
            type Response = u64;
            const NAME: &'static str = "test_plus";
            fn serve_batch(&self, requests: &[u64]) -> Vec<u64> {
                requests.iter().map(|r| r + self.0).collect()
            }
        }
        let runtime = ServeRuntime::start(Plus(1), quick_config());
        assert_eq!(runtime.call(10).unwrap(), 11);
        let version = runtime.swap(Plus(100));
        assert_eq!(version, 1);
        assert_eq!(runtime.call(10).unwrap(), 110);
        let report = runtime.shutdown();
        assert_eq!(report.swaps, 1);
    }

    #[test]
    #[should_panic(expected = "invalid serve config")]
    fn zero_threads_rejected() {
        let _ = ServeRuntime::start(Doubler, ServeConfig { threads: 0, ..quick_config() });
    }
}
