//! The [`ServeTask`] abstraction and adapters for the three learned
//! structures in `setlearn`.
//!
//! A task is the unit the runtime hot-swaps and batches over: it consumes a
//! slice of requests and answers all of them in one call, so the model's
//! batched forward pass (one embedding gather + matmul for the whole batch)
//! amortizes per-query overhead. Adapters reuse the serve paths in
//! [`setlearn::tasks`] — including their [`setlearn::ServeGuard`] fallbacks,
//! so a hot-swapped model gone bad degrades to the auxiliary structure
//! instead of serving garbage.

use setlearn::tasks::{LearnedBloom, LearnedCardinality, LearnedSetIndex};
use setlearn_data::{ElementSet, SetCollection};
use std::sync::Arc;

/// A batched, thread-shareable serving workload.
///
/// Implementations must be cheap to call with a small batch (the runtime's
/// batch size adapts to load: under light traffic batches of 1 are normal)
/// and must return exactly one response per request, in request order.
pub trait ServeTask: Send + Sync + 'static {
    /// One unit of work submitted by a client.
    type Request: Send + 'static;
    /// The answer produced for one request.
    type Response: Send + 'static;

    /// Task name used as the `task` label on every serve metric.
    const NAME: &'static str;

    /// Answers every request in the batch, in order.
    fn serve_batch(&self, requests: &[Self::Request]) -> Vec<Self::Response>;
}

/// Cardinality estimation over canonical query sets
/// ([`LearnedCardinality::estimate_batch`]).
#[derive(Debug, Clone)]
pub struct CardinalityTask {
    /// The served estimator (outlier store, delta layer, and serve guard
    /// included).
    pub estimator: LearnedCardinality,
}

impl ServeTask for CardinalityTask {
    type Request = ElementSet;
    type Response = f64;
    const NAME: &'static str = "cardinality";

    fn serve_batch(&self, requests: &[ElementSet]) -> Vec<f64> {
        self.estimator.estimate_batch(requests)
    }
}

/// Set-index position lookup ([`LearnedSetIndex::lookup_batch`]). The
/// collection rides along in an `Arc` so hot-swapping the index does not
/// copy the data.
#[derive(Debug, Clone)]
pub struct IndexTask {
    /// The served index (auxiliary store and serve guard included).
    pub index: LearnedSetIndex,
    /// The collection positions refer to.
    pub collection: Arc<SetCollection>,
}

impl ServeTask for IndexTask {
    type Request = ElementSet;
    type Response = Option<usize>;
    const NAME: &'static str = "index";

    fn serve_batch(&self, requests: &[ElementSet]) -> Vec<Option<usize>> {
        self.index.lookup_batch(&self.collection, requests)
    }
}

/// Approximate membership ([`LearnedBloom::contains_many`]).
#[derive(Debug, Clone)]
pub struct BloomTask {
    /// The served filter (backup filter and serve guard included).
    pub filter: LearnedBloom,
}

impl ServeTask for BloomTask {
    type Request = ElementSet;
    type Response = bool;
    const NAME: &'static str = "bloom";

    fn serve_batch(&self, requests: &[ElementSet]) -> Vec<bool> {
        self.filter.contains_many(requests)
    }
}
