//! The [`ServeTask`] abstraction and the generic adapter over
//! [`LearnedSetStructure`].
//!
//! A task is the unit the runtime hot-swaps and batches over: it consumes a
//! slice of requests and answers all of them in one call, so the model's
//! batched forward pass (one embedding gather + matmul for the whole batch)
//! amortizes per-query overhead.
//!
//! Since the `LearnedSetStructure` redesign, the three per-task adapters
//! (`CardinalityTask` / `IndexTask` / `BloomTask`) are one generic
//! [`StructureTask`] instantiated per structure: every learned structure —
//! sharded or not — serves through `query_batch`, and responses carry the
//! shared [`QueryOutcome`] degradation flags (guard fallbacks, index bound
//! misses) instead of a bare value.

use setlearn::tasks::{
    IndexStructure, LearnedBloom, LearnedCardinality, LearnedSetStructure, QueryOutcome,
};
use setlearn_data::ElementSet;

/// A batched, thread-shareable serving workload.
///
/// Implementations must be cheap to call with a small batch (the runtime's
/// batch size adapts to load: under light traffic batches of 1 are normal)
/// and must return exactly one response per request, in request order.
pub trait ServeTask: Send + Sync + 'static {
    /// One unit of work submitted by a client.
    type Request: Send + 'static;
    /// The answer produced for one request.
    type Response: Send + 'static;

    /// Task name used as the `task` label on every serve metric.
    const NAME: &'static str;

    /// Answers every request in the batch, in order.
    fn serve_batch(&self, requests: &[Self::Request]) -> Vec<Self::Response>;
}

/// The one serve adapter: any [`LearnedSetStructure`] becomes a
/// [`ServeTask`] answering canonical query sets with [`QueryOutcome`]s.
/// Serve guards, outlier stores, and backup filters all ride inside the
/// structure, so a hot-swapped model gone bad degrades instead of serving
/// garbage — and the outcome's `fallback` flag says so.
#[derive(Debug, Clone)]
pub struct StructureTask<S> {
    /// The served structure (aggregate or single shard).
    pub structure: S,
}

impl<S> StructureTask<S> {
    /// Wraps a structure for serving.
    pub fn new(structure: S) -> Self {
        StructureTask { structure }
    }
}

impl<S> ServeTask for StructureTask<S>
where
    S: LearnedSetStructure + Send + Sync + 'static,
    S::Output: Send + 'static,
{
    type Request = ElementSet;
    type Response = QueryOutcome<S::Output>;
    const NAME: &'static str = S::NAME;

    fn serve_batch(&self, requests: &[ElementSet]) -> Vec<QueryOutcome<S::Output>> {
        self.structure.query_batch(requests)
    }
}

/// Cardinality estimation over canonical query sets.
pub type CardinalityTask = StructureTask<LearnedCardinality>;

/// Set-index position lookup. [`IndexStructure`] carries the collection in
/// an `Arc`, so hot-swapping the index does not copy the data.
pub type IndexTask = StructureTask<IndexStructure>;

/// Approximate membership.
pub type BloomTask = StructureTask<LearnedBloom>;
