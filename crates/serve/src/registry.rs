//! Multi-tenant collection registry: one process serves many named
//! collections.
//!
//! A [`CollectionRegistry`] owns one serving backend per collection under a
//! collections root directory (`<root>/<name>/` — see
//! [`setlearn::persist::discover_collections`] for the layout). Collections
//! load lazily: the first frame addressing a name pays the checkpoint load
//! (concurrent requests for the same name are refused with
//! [`ResolveError::Loading`], a typed retry signal, instead of queuing
//! behind the load). Resident collections are evicted least-recently-used
//! when the configured byte budget is exceeded — except collections with
//! pending WAL operations or an in-flight compaction, which are pinned:
//! eviction must never lose an acknowledged write or abandon a retrain.
//!
//! Per-tenant admission control sits in front of each collection's
//! [`BoundedQueue`](crate::queue::BoundedQueue): a token bucket refilled at
//! `rate` requests/second up to `burst`. A tenant that exhausts its bucket
//! is shed with [`ErrorCode::TenantOverloaded`](crate::proto::ErrorCode) —
//! typed distinctly from global [`Overloaded`](crate::error::ServeError)
//! shedding, so a noisy tenant's clients see "you are over quota" while
//! everyone else's traffic is untouched.
//!
//! Registry telemetry (all labeled `collection="…"`, bounded by the obs
//! registry's `MAX_SERIES_PER_FAMILY` overflow collapse):
//!
//! - `setlearn_registry_loads_total` — checkpoint loads (counter)
//! - `setlearn_registry_evictions_total` — LRU evictions (counter)
//! - `setlearn_registry_resident` — resident collections (gauge, unlabeled)
//! - `setlearn_registry_resident_bytes` — bytes resident (gauge, unlabeled)
//! - `setlearn_serve_tenant_shed_total` — quota refusals (counter)

use crate::compact::{spawn_compactor_named, CompactorConfig, CompactorHandle};
use crate::hotswap::HotSwap;
use crate::net::{MutableBackend, WireBackend};
use crate::proto::CollectionInfo;
use crate::runtime::{ServeConfig, ServeRuntime};
use crate::sharded::ShardedRuntime;
use crate::task::StructureTask;
use crate::telemetry::NetTele;
use setlearn::mutable::{DeltaMergeable, MutableCollection, MutableSink};
use setlearn::persist::{
    self, load_json, CollectionEntry, COLLECTION_MODEL, COLLECTION_SETS, COLLECTION_WAL,
};
use setlearn::tasks::{
    aggregate_bloom, aggregate_cardinality, aggregate_index, BloomConfig, CardinalityConfig,
    IndexConfig, IndexStructure, LearnedBloom, LearnedCardinality, LearnedSetIndex,
    ShardedBloom, ShardedCardinality, ShardedIndex, ShardedIndexStructure,
};
use setlearn::wire::{QueryResponse, WireTask};
use setlearn::{DeepSetsConfig, ShardedCollection};
use setlearn_data::SetCollection;
use setlearn_obs::Counter;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-tenant admission quota: a token bucket refilled continuously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Sustained admission rate, requests (query-batch elements) per second.
    pub rate: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: f64,
}

impl QuotaConfig {
    /// A quota admitting `rate` requests/second with a burst of the same.
    pub fn per_second(rate: f64) -> Self {
        QuotaConfig { rate, burst: rate }
    }
}

/// Tuning for a [`CollectionRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Collections root: `<root>/<name>/manifest.json` + checkpoints.
    pub root: PathBuf,
    /// Collection served to v1 clients and v2 frames with an empty
    /// collection id. `None` refuses unaddressed frames with
    /// `UnknownCollection`.
    pub default_collection: Option<String>,
    /// LRU byte budget over resident collections (on-disk checkpoint size
    /// as the resident-size proxy). `None` never evicts.
    pub max_resident_bytes: Option<u64>,
    /// Runtime knobs applied to every collection's worker pool.
    pub serve: ServeConfig,
    /// Per-tenant token bucket applied to every collection; `None` disables
    /// tenant quotas (only global queue backpressure sheds).
    pub quota: Option<QuotaConfig>,
    /// Spawn a background compactor for mutable (WAL-backed) collections
    /// once this many ops are pending; 0 leaves deltas to the exact overlay.
    pub compact_after: usize,
}

impl RegistryConfig {
    /// A registry over `root` with default serve settings, no byte budget,
    /// no quotas, and no default collection.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RegistryConfig {
            root: root.into(),
            default_collection: None,
            max_resident_bytes: None,
            serve: ServeConfig::default(),
            quota: None,
            compact_after: 0,
        }
    }
}

/// A token bucket guarding one tenant's admission.
pub(crate) struct TenantQuota {
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

struct BucketState {
    tokens: f64,
    refilled: Instant,
}

impl TenantQuota {
    fn new(config: QuotaConfig) -> Self {
        TenantQuota {
            rate: config.rate.max(0.0),
            burst: config.burst.max(1.0),
            state: Mutex::new(BucketState { tokens: config.burst.max(1.0), refilled: Instant::now() }),
        }
    }

    /// Admits `n` requests if the bucket holds that many tokens.
    pub(crate) fn try_admit(&self, n: usize) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let elapsed = now.duration_since(state.refilled).as_secs_f64();
        state.tokens = (state.tokens + elapsed * self.rate).min(self.burst);
        state.refilled = now;
        if state.tokens >= n as f64 {
            state.tokens -= n as f64;
            true
        } else {
            false
        }
    }
}

/// One resident (loaded and serving) collection.
pub struct Resident {
    name: String,
    task: WireTask,
    backend: Arc<dyn WireBackend>,
    quota: Option<TenantQuota>,
    tele: NetTele,
    tenant_shed: Arc<Counter>,
    disk_bytes: u64,
    /// Logical-clock timestamp of the last resolve, the LRU key.
    last_used: AtomicU64,
    compactor: Option<CompactorHandle>,
}

impl Resident {
    /// The collection id.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task this collection serves.
    pub fn task(&self) -> WireTask {
        self.task
    }

    /// The serving backend (queries and ingest route through it).
    pub fn backend(&self) -> &Arc<dyn WireBackend> {
        &self.backend
    }

    /// On-disk checkpoint bytes, the registry's resident-size proxy.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_bytes
    }

    /// Mutations applied but not yet compacted (0 for immutable).
    pub fn pending_ingest(&self) -> u64 {
        self.backend.pending_ingest()
    }

    /// Collection-labeled front-end telemetry for frames this collection
    /// answers.
    pub(crate) fn tele(&self) -> &NetTele {
        &self.tele
    }

    /// Charges `n` requests against the tenant's bucket; always admits when
    /// quotas are off. A refusal is counted under
    /// `setlearn_serve_tenant_shed_total{collection="…"}`.
    pub(crate) fn try_admit(&self, n: usize) -> bool {
        match &self.quota {
            None => true,
            Some(quota) => {
                let ok = quota.try_admit(n);
                if !ok && setlearn_obs::metrics_on() {
                    self.tenant_shed.inc();
                }
                ok
            }
        }
    }

    /// Pinned collections are never evicted: acknowledged writes not yet
    /// compacted and in-flight compactions must survive.
    fn pinned(&self) -> bool {
        self.backend.pending_ingest() > 0
            || self.compactor.as_ref().is_some_and(|c| c.is_compacting())
    }
}

impl fmt::Debug for Resident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Resident")
            .field("name", &self.name)
            .field("task", &self.task)
            .field("disk_bytes", &self.disk_bytes)
            .field("pending_ingest", &self.pending_ingest())
            .finish()
    }
}

/// Why a collection could not be resolved to a serving backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No collection with this name (or no default for unaddressed frames).
    Unknown(String),
    /// Another request is loading this collection right now; retry shortly.
    Loading(String),
    /// The collection exists but its checkpoint failed to load.
    Failed(String, String),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Unknown(name) => write!(f, "unknown collection {name:?}"),
            ResolveError::Loading(name) => write!(f, "collection {name:?} is loading"),
            ResolveError::Failed(name, e) => write!(f, "collection {name:?} failed to load: {e}"),
        }
    }
}

/// Why an attach/detach admin request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminError {
    /// The named directory is missing, malformed, or invalidly named.
    Unknown(String),
    /// The collection is pinned (pending WAL ops or in-flight compaction).
    Busy(String),
}

impl fmt::Display for AdminError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdminError::Unknown(e) => write!(f, "unknown collection: {e}"),
            AdminError::Busy(name) => write!(f, "collection {name:?} has pending writes"),
        }
    }
}

enum Slot {
    /// A request is loading the checkpoint outside the registry lock.
    Loading,
    Ready(Arc<Resident>),
}

/// The multi-tenant registry: resolves collection names to resident
/// serving backends, loading lazily and evicting LRU under a byte budget.
pub struct CollectionRegistry {
    config: RegistryConfig,
    entries: Mutex<HashMap<String, Slot>>,
    /// Names detached by an admin frame: lazy loading will not resurrect
    /// them until re-attached.
    detached: Mutex<HashSet<String>>,
    /// Monotone logical clock ordering resolves for LRU.
    clock: AtomicU64,
}

impl CollectionRegistry {
    /// A registry over `config.root`. Directories are discovered lazily;
    /// the root may even be created after the registry.
    pub fn new(config: RegistryConfig) -> Self {
        CollectionRegistry {
            config,
            entries: Mutex::new(HashMap::new()),
            detached: Mutex::new(HashSet::new()),
            clock: AtomicU64::new(0),
        }
    }

    /// The collections root directory.
    pub fn root(&self) -> &Path {
        &self.config.root
    }

    /// The collection unaddressed (v1 or empty-id v2) frames route to.
    pub fn default_collection(&self) -> Option<&str> {
        self.config.default_collection.as_deref()
    }

    /// Resolves a frame's collection id (None = the default collection) to
    /// its resident backend, loading the checkpoint on first use.
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<Resident>, ResolveError> {
        let name = match name {
            Some(name) => name,
            None => self
                .config
                .default_collection
                .as_deref()
                .ok_or_else(|| ResolveError::Unknown("(default)".into()))?,
        };
        {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            match entries.get(name) {
                Some(Slot::Ready(resident)) => {
                    let resident = Arc::clone(resident);
                    resident
                        .last_used
                        .store(self.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                    return Ok(resident);
                }
                Some(Slot::Loading) => return Err(ResolveError::Loading(name.to_string())),
                None => {}
            }
            if self.detached.lock().unwrap_or_else(|e| e.into_inner()).contains(name) {
                return Err(ResolveError::Unknown(name.to_string()));
            }
            entries.insert(name.to_string(), Slot::Loading);
        }
        // Checkpoint load happens outside the lock: other collections keep
        // resolving, and concurrent requests for this one get the typed
        // `Loading` retry signal instead of convoying here.
        let loaded = self.load_resident(name);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match loaded {
            Ok(resident) => {
                let resident = Arc::new(resident);
                resident
                    .last_used
                    .store(self.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                entries.insert(name.to_string(), Slot::Ready(Arc::clone(&resident)));
                if setlearn_obs::metrics_on() {
                    setlearn_obs::metrics()
                        .counter_with("setlearn_registry_loads_total", &[("collection", name)])
                        .inc();
                }
                self.enforce_budget(&mut entries, name);
                self.publish_gauges(&entries);
                Ok(resident)
            }
            Err(e) => {
                entries.remove(name);
                Err(ResolveError::Failed(name.to_string(), e))
            }
        }
    }

    /// Evicts least-recently-used unpinned collections until the resident
    /// byte total fits the budget. `keep` (the collection just resolved) is
    /// never evicted — a budget smaller than one collection must not evict
    /// the backend the caller is about to use.
    fn enforce_budget(&self, entries: &mut HashMap<String, Slot>, keep: &str) {
        let Some(budget) = self.config.max_resident_bytes else { return };
        loop {
            let total: u64 = entries
                .values()
                .map(|slot| match slot {
                    Slot::Ready(r) => r.disk_bytes,
                    Slot::Loading => 0,
                })
                .sum();
            if total <= budget {
                return;
            }
            let victim = entries
                .iter()
                .filter_map(|(name, slot)| match slot {
                    Slot::Ready(r) if name != keep && !r.pinned() => {
                        Some((name.clone(), r.last_used.load(Ordering::Relaxed)))
                    }
                    _ => None,
                })
                .min_by_key(|(_, used)| *used);
            let Some((victim, _)) = victim else { return };
            entries.remove(&victim);
            if setlearn_obs::metrics_on() {
                setlearn_obs::metrics()
                    .counter_with(
                        "setlearn_registry_evictions_total",
                        &[("collection", &victim)],
                    )
                    .inc();
            }
        }
    }

    fn publish_gauges(&self, entries: &HashMap<String, Slot>) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        let resident: Vec<&Arc<Resident>> = entries
            .values()
            .filter_map(|slot| match slot {
                Slot::Ready(r) => Some(r),
                Slot::Loading => None,
            })
            .collect();
        let m = setlearn_obs::metrics();
        m.gauge_with("setlearn_registry_resident", &[]).set(resident.len() as f64);
        m.gauge_with("setlearn_registry_resident_bytes", &[])
            .set(resident.iter().map(|r| r.disk_bytes).sum::<u64>() as f64);
    }

    /// Every collection under the root (resident or not) plus any resident
    /// entries, for the `KIND_COLLECTIONS` admin frame. Directories whose
    /// manifest names an unknown task are skipped.
    pub fn list(&self) -> Vec<CollectionInfo> {
        let mut rows: HashMap<String, CollectionInfo> = HashMap::new();
        if let Ok(found) = persist::discover_collections(&self.config.root) {
            for entry in found {
                let Ok(task) = entry.manifest.task.parse::<WireTask>() else { continue };
                rows.insert(
                    entry.name.clone(),
                    CollectionInfo {
                        name: entry.name,
                        task,
                        resident: false,
                        pending_ops: 0,
                        disk_bytes: entry.disk_bytes,
                    },
                );
            }
        }
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for (name, slot) in entries.iter() {
            if let Slot::Ready(r) = slot {
                rows.insert(
                    name.clone(),
                    CollectionInfo {
                        name: name.clone(),
                        task: r.task,
                        resident: true,
                        pending_ops: r.pending_ingest(),
                        disk_bytes: r.disk_bytes,
                    },
                );
            }
        }
        let mut rows: Vec<CollectionInfo> = rows.into_values().collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Registers (or re-registers after a detach) a collection directory.
    /// The checkpoint still loads lazily on first request; attach only
    /// validates the directory and clears the detached mark.
    pub fn attach(&self, name: &str) -> Result<(), AdminError> {
        persist::inspect_collection(&self.config.root, name)
            .map_err(|e| AdminError::Unknown(e.to_string()))?;
        self.detached.lock().unwrap_or_else(|e| e.into_inner()).remove(name);
        Ok(())
    }

    /// Evicts and unregisters a collection: subsequent frames addressing it
    /// get `UnknownCollection` until it is re-attached. Refused while the
    /// collection is pinned (pending WAL ops or in-flight compaction).
    pub fn detach(&self, name: &str) -> Result<(), AdminError> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match entries.get(name) {
            Some(Slot::Ready(r)) if r.pinned() => {
                return Err(AdminError::Busy(name.to_string()))
            }
            Some(Slot::Loading) => return Err(AdminError::Busy(name.to_string())),
            _ => {}
        }
        entries.remove(name);
        self.detached.lock().unwrap_or_else(|e| e.into_inner()).insert(name.to_string());
        self.publish_gauges(&entries);
        Ok(())
    }

    /// Number of collections currently resident.
    pub fn resident_count(&self) -> u32 {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.values().filter(|s| matches!(s, Slot::Ready(_))).count() as u32
    }

    /// `(collection, pending ingest ops)` per resident collection, sorted
    /// by name — the health report's per-collection compactor-lag view.
    pub fn collection_pending(&self) -> Vec<(String, u64)> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<(String, u64)> = entries
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Ready(r) => Some((name.clone(), r.pending_ingest())),
                Slot::Loading => None,
            })
            .collect();
        rows.sort();
        rows
    }

    /// Worst queue saturation across resident collections, the health
    /// probe's input: `(depth, capacity)` of the most saturated queue.
    pub fn worst_queue(&self) -> (usize, usize) {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .values()
            .filter_map(|slot| match slot {
                Slot::Ready(r) => Some(r.backend.queue_stats()),
                Slot::Loading => None,
            })
            .max_by(|(d1, c1), (d2, c2)| {
                let s1 = if *c1 == 0 { 0.0 } else { *d1 as f64 / *c1 as f64 };
                let s2 = if *c2 == 0 { 0.0 } else { *d2 as f64 / *c2 as f64 };
                s1.total_cmp(&s2)
            })
            .unwrap_or((0, 0))
    }

    // -- loading ----------------------------------------------------------

    /// Loads one collection's checkpoint into a serving backend, mirroring
    /// the CLI's single-tenant serve paths (immutable single, immutable
    /// sharded, mutable WAL-backed).
    fn load_resident(&self, name: &str) -> Result<Resident, String> {
        let entry = persist::inspect_collection(&self.config.root, name)
            .map_err(|e| e.to_string())?;
        let task: WireTask = entry
            .manifest
            .task
            .parse()
            .map_err(|_| format!("manifest names unknown task {:?}", entry.manifest.task))?;
        let (backend, compactor) = if entry.has_wal {
            self.load_mutable(name, task, &entry)?
        } else {
            (self.load_immutable(name, task, &entry)?, None)
        };
        if backend.wire_task() != task {
            return Err(format!(
                "checkpoint serves {} but the manifest says {}",
                backend.wire_task(),
                task
            ));
        }
        Ok(Resident {
            name: name.to_string(),
            task,
            backend,
            quota: self.config.quota.map(TenantQuota::new),
            tele: NetTele::for_collection(task.label(), name),
            tenant_shed: setlearn_obs::metrics()
                .counter_with("setlearn_serve_tenant_shed_total", &[("collection", name)]),
            disk_bytes: entry.disk_bytes,
            last_used: AtomicU64::new(0),
            compactor,
        })
    }

    fn load_immutable(
        &self,
        name: &str,
        task: WireTask,
        entry: &CollectionEntry,
    ) -> Result<Arc<dyn WireBackend>, String> {
        let cfg = self.config.serve.clone();
        let model = entry.dir.join(COLLECTION_MODEL);
        let err = |e: persist::PersistError| e.to_string();
        let backend: Arc<dyn WireBackend> = match (task, entry.manifest.shards) {
            (WireTask::Cardinality, None) => {
                let est: LearnedCardinality = load_json(&model).map_err(err)?;
                Arc::new(ServeRuntime::start_named(StructureTask::new(est), cfg, name))
            }
            (WireTask::Cardinality, Some(shards)) => {
                let est: ShardedCardinality = load_json(&model).map_err(err)?;
                check_shards("cardinality", est.spec().shards, shards)?;
                let tasks: Vec<StructureTask<LearnedCardinality>> =
                    est.into_shards().into_iter().map(StructureTask::new).collect();
                Arc::new(ShardedRuntime::start_named(tasks, cfg, aggregate_cardinality, name))
            }
            (WireTask::Bloom, None) => {
                let filter: LearnedBloom = load_json(&model).map_err(err)?;
                Arc::new(ServeRuntime::start_named(StructureTask::new(filter), cfg, name))
            }
            (WireTask::Bloom, Some(shards)) => {
                let filter: ShardedBloom = load_json(&model).map_err(err)?;
                check_shards("bloom", filter.spec().shards, shards)?;
                let tasks: Vec<StructureTask<LearnedBloom>> =
                    filter.into_shards().into_iter().map(StructureTask::new).collect();
                Arc::new(ShardedRuntime::start_named(tasks, cfg, aggregate_bloom, name))
            }
            (WireTask::Index, None) => {
                let collection: SetCollection =
                    load_json(&entry.dir.join(COLLECTION_SETS)).map_err(err)?;
                let index: LearnedSetIndex = load_json(&model).map_err(err)?;
                let structure = IndexStructure { index, collection: Arc::new(collection) };
                Arc::new(ServeRuntime::start_named(StructureTask::new(structure), cfg, name))
            }
            (WireTask::Index, Some(shards)) => {
                let collection: SetCollection =
                    load_json(&entry.dir.join(COLLECTION_SETS)).map_err(err)?;
                let index: ShardedIndex = load_json(&model).map_err(err)?;
                check_shards("index", index.spec().shards, shards)?;
                // The model's own spec routes the partition, so the manifest
                // only has to get the count right.
                let sharded = ShardedCollection::partition(&collection, index.spec())
                    .map_err(|e| e.to_string())?;
                let structure = ShardedIndexStructure::new(index, &sharded);
                let target = structure.target();
                let tasks: Vec<_> = structure
                    .shard_structures()
                    .iter()
                    .cloned()
                    .map(StructureTask::new)
                    .collect();
                Arc::new(ShardedRuntime::start_named(
                    tasks,
                    cfg,
                    move |parts| aggregate_index(target, parts),
                    name,
                ))
            }
        };
        Ok(backend)
    }

    fn load_mutable(
        &self,
        name: &str,
        task: WireTask,
        entry: &CollectionEntry,
    ) -> Result<(Arc<dyn WireBackend>, Option<CompactorHandle>), String> {
        if entry.manifest.shards.is_some() {
            return Err("mutable (WAL-backed) collections cannot be sharded".into());
        }
        let wal_dir = entry.dir.join(COLLECTION_WAL);
        // A compaction checkpoint in the WAL dir supersedes the original
        // model/collection files, exactly as in single-tenant serving.
        let err = |e: persist::PersistError| e.to_string();
        let checkpoint = wal_dir.join("checkpoint.json");
        let base: Arc<SetCollection> = Arc::new(if checkpoint.exists() {
            load_json(&checkpoint).map_err(err)?
        } else {
            load_json(&entry.dir.join(COLLECTION_SETS)).map_err(err)?
        });
        let compacted = wal_dir.join("model.json");
        let model =
            if compacted.exists() { compacted } else { entry.dir.join(COLLECTION_MODEL) };
        let wal2 = wal_dir.clone();
        match task {
            WireTask::Cardinality => {
                let est: LearnedCardinality = load_json(&model).map_err(err)?;
                self.start_mutable(name, est, base, &wal_dir, move |merged| {
                    let cfg =
                        CardinalityConfig::new(DeepSetsConfig::lsm(merged.num_elements()));
                    let (est, _) = LearnedCardinality::build(merged, &cfg);
                    persist_compaction(&wal2, &est, merged)?;
                    Some(est)
                })
            }
            WireTask::Bloom => {
                let filter: LearnedBloom = load_json(&model).map_err(err)?;
                self.start_mutable(name, filter, base, &wal_dir, move |merged| {
                    let cfg = BloomConfig::new(DeepSetsConfig::lsm(merged.num_elements()));
                    let (filter, _) =
                        LearnedBloom::build_from_collection(merged, 2_000, 2_000, 4, &cfg);
                    persist_compaction(&wal2, &filter, merged)?;
                    Some(filter)
                })
            }
            WireTask::Index => {
                let index: LearnedSetIndex = load_json(&model).map_err(err)?;
                let structure = IndexStructure { index, collection: Arc::clone(&base) };
                self.start_mutable(name, structure, base, &wal_dir, move |merged| {
                    let cfg = IndexConfig::new(DeepSetsConfig::lsm(merged.num_elements()));
                    let (index, _) = LearnedSetIndex::build(merged, &cfg);
                    persist_compaction(&wal2, &index, merged)?;
                    Some(IndexStructure { index, collection: Arc::new(merged.clone()) })
                })
            }
        }
    }

    /// Opens the WAL-backed collection, starts its runtime over a shared
    /// hot-swap slot, and (when configured) the compaction daemon that
    /// publishes into that slot.
    fn start_mutable<S>(
        &self,
        name: &str,
        structure: S,
        base: Arc<SetCollection>,
        wal_dir: &Path,
        rebuild: impl FnMut(&SetCollection) -> Option<S> + Send + 'static,
    ) -> Result<(Arc<dyn WireBackend>, Option<CompactorHandle>), String>
    where
        S: DeltaMergeable + Send + Sync + 'static,
        S::Output: Send + 'static,
        QueryResponse: From<setlearn::tasks::QueryOutcome<S::Output>>,
    {
        let (collection, _report) =
            MutableCollection::open(structure, base, wal_dir).map_err(|e| e.to_string())?;
        let collection = Arc::new(collection);
        let slot = Arc::new(HotSwap::new(StructureTask::new(Arc::clone(&collection))));
        let runtime = Arc::new(ServeRuntime::start_shared_named(
            Arc::clone(&slot),
            self.config.serve.clone(),
            name,
        ));
        let compactor = (self.config.compact_after > 0).then(|| {
            spawn_compactor_named(
                Arc::clone(&collection),
                slot,
                rebuild,
                CompactorConfig {
                    max_delta_ops: self.config.compact_after,
                    ..CompactorConfig::default()
                },
                name,
            )
        });
        let backend = Arc::new(MutableBackend::new(
            runtime as Arc<dyn WireBackend>,
            collection as Arc<dyn MutableSink>,
        ));
        Ok((backend, compactor))
    }
}

impl fmt::Debug for CollectionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectionRegistry")
            .field("root", &self.config.root)
            .field("default_collection", &self.config.default_collection)
            .field("resident", &self.resident_count())
            .finish()
    }
}

fn check_shards(task: &str, have: usize, want: usize) -> Result<(), String> {
    if have == want {
        Ok(())
    } else {
        Err(format!("sharded {task} checkpoint has {have} shards, manifest says {want}"))
    }
}

/// Durably checkpoints a compaction (retrained model + merged collection)
/// into the WAL dir before the watermark advances; `None` leaves the delta
/// pending so the compactor retries.
fn persist_compaction<M: serde::Serialize>(
    wal_dir: &Path,
    model: &M,
    merged: &SetCollection,
) -> Option<()> {
    for (what, result) in [
        ("model", persist::save_json(model, &wal_dir.join("model.json"))),
        ("collection", persist::save_json(merged, &wal_dir.join("checkpoint.json"))),
    ] {
        if let Err(e) = result {
            eprintln!("warning: compaction checkpoint failed ({what}): {e}");
            return None;
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn::persist::{save_manifest, CollectionManifest};
    use setlearn_data::GeneratorConfig;
    use std::time::Duration;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "setlearn-registry-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick_serve() -> ServeConfig {
        ServeConfig {
            threads: 1,
            max_batch: 8,
            max_delay: Duration::from_micros(50),
            queue_capacity: 64,
        }
    }

    fn small_collection(seed: u64) -> SetCollection {
        GeneratorConfig {
            num_sets: 30,
            vocab: 40,
            zipf_s: 0.0,
            min_set_size: 2,
            max_set_size: 5,
            seed,
        }
        .generate()
    }

    /// Writes a trained cardinality collection under `root/<name>/`.
    fn write_cardinality(root: &Path, name: &str, seed: u64) -> LearnedCardinality {
        let sets = small_collection(seed);
        let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(sets.num_elements()));
        cfg.guided.warmup_epochs = 1;
        cfg.guided.rounds = 0;
        cfg.guided.epochs_per_round = 1;
        cfg.max_subset_size = 2;
        let (est, _) = LearnedCardinality::build(&sets, &cfg);
        let dir = root.join(name);
        save_manifest(
            &dir,
            &CollectionManifest { task: "cardinality".into(), shards: None, shard_by: None },
        )
        .unwrap();
        persist::save_json(&est, &dir.join(COLLECTION_MODEL)).unwrap();
        persist::save_json(&sets, &dir.join(COLLECTION_SETS)).unwrap();
        est
    }

    #[test]
    fn lazy_load_then_hit_serves_identical_answers() {
        let root = tmpdir("lazy");
        let est = write_cardinality(&root, "alpha", 7);
        let mut config = RegistryConfig::new(&root);
        config.serve = quick_serve();
        config.default_collection = Some("alpha".into());
        let registry = CollectionRegistry::new(config);

        assert_eq!(registry.resident_count(), 0, "nothing loads before first use");
        let resident = registry.resolve(Some("alpha")).unwrap();
        assert_eq!(registry.resident_count(), 1);
        assert_eq!(resident.task(), WireTask::Cardinality);

        // The default route resolves to the same resident.
        let by_default = registry.resolve(None).unwrap();
        assert!(Arc::ptr_eq(&resident, &by_default));

        // Served answers match direct structure queries bit-for-bit.
        use setlearn::tasks::LearnedSetStructure;
        let query = setlearn_data::normalize(vec![1, 2]);
        let direct = est.query(&query).value;
        let tickets = resident.backend().submit_wire(vec![query]);
        for ticket in tickets {
            let response = ticket().unwrap();
            match response.value {
                setlearn::wire::QueryValue::Cardinality(v) => {
                    assert_eq!(v.to_bits(), direct.to_bits())
                }
                other => panic!("wrong response kind: {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_and_detached_collections_refuse_typed() {
        let root = tmpdir("unknown");
        write_cardinality(&root, "alpha", 9);
        let mut config = RegistryConfig::new(&root);
        config.serve = quick_serve();
        let registry = CollectionRegistry::new(config);

        assert!(matches!(registry.resolve(Some("ghost")), Err(ResolveError::Failed(..))));
        // No default configured: unaddressed frames have nowhere to go.
        assert!(matches!(registry.resolve(None), Err(ResolveError::Unknown(_))));

        registry.resolve(Some("alpha")).unwrap();
        registry.detach("alpha").unwrap();
        assert_eq!(registry.resident_count(), 0);
        assert!(
            matches!(registry.resolve(Some("alpha")), Err(ResolveError::Unknown(_))),
            "detached collections do not lazily resurrect"
        );
        registry.attach("alpha").unwrap();
        assert!(registry.resolve(Some("alpha")).is_ok(), "re-attach restores serving");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lru_eviction_respects_budget_and_reloads() {
        let root = tmpdir("lru");
        write_cardinality(&root, "old", 1);
        write_cardinality(&root, "new", 2);
        let mut config = RegistryConfig::new(&root);
        config.serve = quick_serve();
        // Budget fits roughly one collection: loading the second evicts the
        // least recently used first.
        let one = persist::inspect_collection(&root, "old").unwrap().disk_bytes;
        config.max_resident_bytes = Some(one + one / 2);
        let registry = CollectionRegistry::new(config);

        registry.resolve(Some("old")).unwrap();
        registry.resolve(Some("new")).unwrap();
        assert_eq!(registry.resident_count(), 1, "budget holds one collection");
        let rows = registry.list();
        let resident: Vec<&str> =
            rows.iter().filter(|r| r.resident).map(|r| r.name.as_str()).collect();
        assert_eq!(resident, ["new"], "LRU evicts the older resident");

        // The evicted collection reloads transparently and still answers.
        assert!(registry.resolve(Some("old")).is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn token_bucket_sheds_only_past_the_burst() {
        let quota = TenantQuota::new(QuotaConfig { rate: 0.0, burst: 4.0 });
        assert!(quota.try_admit(3), "burst admits");
        assert!(!quota.try_admit(2), "over the remaining tokens");
        assert!(quota.try_admit(1), "the last token still admits");
        assert!(!quota.try_admit(1), "empty bucket with zero refill sheds");

        let refilling = TenantQuota::new(QuotaConfig { rate: 1_000_000.0, burst: 8.0 });
        assert!(refilling.try_admit(8));
        std::thread::sleep(Duration::from_millis(2));
        assert!(refilling.try_admit(8), "bucket refilled at the configured rate");
    }

    #[test]
    fn list_sees_cold_collections_without_loading_them() {
        let root = tmpdir("list");
        write_cardinality(&root, "a", 3);
        write_cardinality(&root, "b", 4);
        let registry = CollectionRegistry::new(RegistryConfig::new(&root));
        let rows = registry.list();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| !r.resident && r.disk_bytes > 0));
        assert_eq!(registry.resident_count(), 0, "listing never loads");
        let _ = std::fs::remove_dir_all(&root);
    }
}
