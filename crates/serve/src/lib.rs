//! # setlearn-serve
//!
//! Concurrent serving runtime for the learned set structures in
//! [`setlearn`]: keeps a model resident and shared across threads, amortizes
//! inference with adaptive micro-batching, refreshes models with zero
//! downtime, and sheds load instead of buffering without bound.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──submit──▶ BoundedQueue ──pop──▶ worker pool (N threads)
//!              │            │                  │  collect ≤ max_batch or
//!    queue full│            │queue_depth       │  wait ≤ max_delay
//!   Overloaded ▼            ▼gauge             ▼
//!      (shed, typed)                 HotSwap<T>::refresh ─▶ serve_batch
//!                                        ▲                     │
//!   DriftMonitor ──signal──▶ refresh daemon (retrain+publish)  ▼
//!                                                     Ticket::wait (client)
//! ```
//!
//! * [`queue::BoundedQueue`] — bounded MPMC queue; admission control sheds
//!   with [`ServeError::Overloaded`] when full (backpressure).
//! * [`hotswap::HotSwap`] — mutex-guarded writer, atomically published
//!   `Arc` snapshots for readers; a swap never tears or stalls a batch.
//! * [`runtime::ServeRuntime`] — the worker pool with adaptive
//!   micro-batching and graceful drain on shutdown.
//! * [`refresh`] — background daemon turning [`setlearn::DriftMonitor`]
//!   retrain signals into retrain-and-publish cycles.
//! * [`task`] — the [`ServeTask`] trait plus the generic [`StructureTask`]
//!   adapter over any `setlearn::tasks::LearnedSetStructure` (serve-guard
//!   fallbacks included).
//! * [`sharded`] — [`ShardedRuntime`]: one pool + hot-swap slot per shard,
//!   fan-out tickets, rolling shard-by-shard swaps.
//!
//! Everything is std-only: threads, mutexes, condvars, atomics, channels.

#![warn(missing_docs)]

pub mod compact;
pub mod error;
pub mod hotswap;
pub mod net;
pub mod proto;
pub mod queue;
pub mod refresh;
pub mod registry;
pub mod request;
pub mod runtime;
pub mod sharded;
pub mod task;
pub(crate) mod telemetry;

pub use compact::{spawn_compactor, spawn_compactor_named, CompactorConfig, CompactorHandle};
pub use error::ServeError;
pub use net::{MutableBackend, NetClient, NetConfig, NetError, NetServer, WireBackend};
pub use proto::{
    ErrorCode, HealthReport, IngestAck, IngestRequest, ProtoError, StatsFormat, WireOutcome,
};
pub use hotswap::{Cached, HotSwap};
pub use queue::BoundedQueue;
pub use refresh::{spawn_refresh, Rebuilt, RefreshConfig, RefreshHandle};
pub use registry::{
    AdminError, CollectionRegistry, QuotaConfig, RegistryConfig, ResolveError, Resident,
};
pub use request::RequestCtx;
pub use runtime::{ServeConfig, ServeReport, ServeRuntime, ServeStats, Ticket};
pub use sharded::{Aggregator, FanoutTicket, ShardedReport, ShardedRuntime};
pub use task::{BloomTask, CardinalityTask, IndexTask, ServeTask, StructureTask};
pub use telemetry::BATCH_BOUNDS;

/// Compile-time assertion that `T` is safe to share across serve workers.
///
/// Every type published through [`HotSwap`] or moved into the worker pool is
/// pinned down in the `const` block below; introducing an `Rc`, `RefCell`,
/// or raw pointer into any of them fails the build right here instead of
/// erupting as a cryptic trait-bound error (or worse, an unsound workaround)
/// at a distant use site.
pub const fn assert_send_sync<T: Send + Sync>() {}

// Everything the runtime shares across threads, checked at compile time.
const _: () = {
    // The served structures themselves.
    assert_send_sync::<setlearn::tasks::LearnedCardinality>();
    assert_send_sync::<setlearn::tasks::LearnedSetIndex>();
    assert_send_sync::<setlearn::tasks::LearnedBloom>();
    assert_send_sync::<setlearn::tasks::IndexStructure>();
    assert_send_sync::<setlearn::tasks::ShardedCardinality>();
    assert_send_sync::<setlearn::tasks::ShardedBloom>();
    assert_send_sync::<setlearn::tasks::ShardIndexStructure>();
    assert_send_sync::<setlearn::tasks::ShardedIndexStructure>();
    assert_send_sync::<setlearn::model::DeepSets>();
    assert_send_sync::<setlearn::ServeGuard>();
    assert_send_sync::<setlearn::ShardedCollection>();
    assert_send_sync::<setlearn_data::SetCollection>();
    // The task adapters published through HotSwap.
    assert_send_sync::<CardinalityTask>();
    assert_send_sync::<IndexTask>();
    assert_send_sync::<BloomTask>();
    assert_send_sync::<StructureTask<setlearn::tasks::ShardIndexStructure>>();
    // Mutable collections shared by the ingest path, serve workers, and the
    // compaction daemon.
    assert_send_sync::<setlearn::mutable::MutableCollection<setlearn::tasks::LearnedCardinality>>();
    assert_send_sync::<
        StructureTask<
            std::sync::Arc<setlearn::mutable::MutableCollection<setlearn::tasks::LearnedBloom>>,
        >,
    >();
    // The runtime plumbing shared between submitters and workers.
    assert_send_sync::<HotSwap<CardinalityTask>>();
    assert_send_sync::<HotSwap<IndexTask>>();
    assert_send_sync::<HotSwap<BloomTask>>();
    assert_send_sync::<BoundedQueue<u64>>();
    assert_send_sync::<ServeStats>();
    assert_send_sync::<ServeRuntime<CardinalityTask>>();
    assert_send_sync::<ServeRuntime<IndexTask>>();
    assert_send_sync::<ServeRuntime<BloomTask>>();
    assert_send_sync::<ShardedRuntime<CardinalityTask>>();
    assert_send_sync::<ShardedRuntime<BloomTask>>();
    assert_send_sync::<ServeError>();
    // The multi-tenant registry shared across connection handlers.
    assert_send_sync::<CollectionRegistry>();
    assert_send_sync::<Resident>();
    // Tracing contexts shared between connection handlers and workers.
    assert_send_sync::<RequestCtx>();
    // The monitor shared between serve observers and the refresh daemon.
    assert_send_sync::<std::sync::Mutex<setlearn::DriftMonitor>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assertions_are_const_callable() {
        // The const block above is the real check; this pins the helper's
        // const-ness so a signature regression is caught by a test too.
        const OK: () = assert_send_sync::<u64>();
        #[allow(clippy::let_unit_value)]
        let _ = OK;
    }
}
