//! Property-style tests for the `SLP1` protocol: every request/response
//! variant round-trips bit-exactly, and random corruption — truncation,
//! oversize, bit flips, pure garbage — is rejected typed, never with a
//! panic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use setlearn::tasks::QueryOutcome;
use setlearn::wire::{QueryRequest, QueryResponse, QueryValue};
use setlearn_serve::proto::{
    decode_request_batch, decode_response_batch, encode_frame, encode_request_batch,
    encode_response_batch, read_frame, ErrorCode, ProtoError, WireOutcome,
    DEFAULT_MAX_FRAME_BYTES, HEADER_LEN,
};
use setlearn_serve::ServeError;

fn random_request(rng: &mut StdRng) -> QueryRequest {
    let len = rng.gen_range(0..64);
    QueryRequest::new((0..len).map(|_| rng.gen::<u32>()).collect())
}

fn random_response(rng: &mut StdRng) -> QueryResponse {
    let value = match rng.gen_range(0..5) {
        0 => QueryValue::Cardinality(f64::from_bits(rng.gen::<u64>() | 0x7ff8_0000_0000_0000)),
        1 => QueryValue::Cardinality(rng.gen::<f64>() * 1e6),
        2 => QueryValue::Position(None),
        3 => QueryValue::Position(Some(rng.gen::<u64>())),
        _ => QueryValue::Membership(rng.gen::<bool>()),
    };
    QueryResponse {
        value,
        fallback: setlearn::wire::fallback_from_code(rng.gen_range(0..3)).unwrap(),
        bound_miss: rng.gen::<bool>(),
    }
}

fn random_outcome(rng: &mut StdRng) -> WireOutcome {
    match rng.gen_range(0..6) {
        0 => Err(ErrorCode::Serve(ServeError::Overloaded)),
        1 => Err(ErrorCode::Serve(ServeError::TaskPanicked)),
        2 => Err(ErrorCode::Serve(ServeError::WorkerLost)),
        _ => Ok(random_response(rng)),
    }
}

#[test]
fn random_request_batches_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x51_b1);
    for _ in 0..200 {
        let n = rng.gen_range(0..32);
        let batch: Vec<QueryRequest> = (0..n).map(|_| random_request(&mut rng)).collect();
        let payload = encode_request_batch(&batch);
        assert_eq!(decode_request_batch(&payload).unwrap(), (batch, None));
    }
}

#[test]
fn random_response_batches_roundtrip_bit_exactly() {
    let mut rng = StdRng::seed_from_u64(0x51_b2);
    for _ in 0..200 {
        let n = rng.gen_range(0..32);
        let batch: Vec<WireOutcome> = (0..n).map(|_| random_outcome(&mut rng)).collect();
        let payload = encode_response_batch(&batch);
        let back = decode_response_batch(&payload).unwrap();
        assert_eq!(back.len(), batch.len());
        for (got, want) in back.iter().zip(&batch) {
            match (got, want) {
                (Ok(g), Ok(w)) => {
                    // Compare NaN payloads too: the wire carries raw bits.
                    match (&g.value, &w.value) {
                        (QueryValue::Cardinality(g), QueryValue::Cardinality(w)) => {
                            assert_eq!(g.to_bits(), w.to_bits());
                        }
                        (gv, wv) => assert_eq!(gv, wv),
                    }
                    assert_eq!(g.fallback, w.fallback);
                    assert_eq!(g.bound_miss, w.bound_miss);
                }
                (Err(g), Err(w)) => assert_eq!(g, w),
                _ => panic!("ok/err shape changed in transit"),
            }
        }
    }
}

#[test]
fn degraded_outcomes_keep_their_flags() {
    let degraded: QueryResponse = QueryOutcome {
        value: Some(42usize),
        fallback: Some(setlearn::hybrid::FallbackReason::NonFinite),
        bound_miss: true,
    }
    .into();
    let payload = encode_response_batch(&[Ok(degraded)]);
    let back = decode_response_batch(&payload).unwrap();
    assert_eq!(back, vec![Ok(degraded)]);
}

#[test]
fn truncated_frames_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x51_b3);
    for _ in 0..50 {
        let batch: Vec<QueryRequest> = (0..rng.gen_range(1..8)).map(|_| random_request(&mut rng)).collect();
        let frame = encode_frame(rng.gen_range(0..3), rng.gen::<u64>(), &encode_request_batch(&batch));
        let cut = rng.gen_range(0..frame.len());
        match read_frame(&mut &frame[..cut], DEFAULT_MAX_FRAME_BYTES) {
            Err(ProtoError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("truncated frame accepted: {other:?}"),
        }
    }
}

#[test]
fn flipped_payload_bits_fail_the_crc() {
    let mut rng = StdRng::seed_from_u64(0x51_b4);
    for _ in 0..100 {
        let batch: Vec<QueryRequest> =
            (0..rng.gen_range(1..8)).map(|_| random_request(&mut rng)).collect();
        let payload = encode_request_batch(&batch);
        let mut frame = encode_frame(0, 7, &payload);
        // Flip one bit somewhere in the payload region.
        let idx = rng.gen_range(HEADER_LEN..frame.len());
        frame[idx] ^= 1u8 << rng.gen_range(0u32..8);
        match read_frame(&mut frame.as_slice(), DEFAULT_MAX_FRAME_BYTES) {
            Err(ProtoError::BadCrc { .. }) => {}
            other => panic!("corrupted payload not caught: {other:?}"),
        }
    }
}

#[test]
fn mutated_headers_never_panic_and_oversize_is_refused_before_reading() {
    let mut rng = StdRng::seed_from_u64(0x51_b5);
    let payload = encode_request_batch(&[QueryRequest::new(vec![1, 2, 3])]);
    let good = encode_frame(1, 9, &payload);
    for _ in 0..500 {
        let mut frame = good.clone();
        let idx = rng.gen_range(0..HEADER_LEN);
        frame[idx] ^= 1u8 << rng.gen_range(0u32..8);
        // Whatever the flip hit (magic, version, kind, id, length, crc), the
        // reader must return — typed error or a frame — never panic or
        // over-allocate. A flipped high length bit must be refused by the
        // size cap, not attempted.
        let _ = read_frame(&mut frame.as_slice(), 1 << 16);
    }
    // Deterministic oversize: declared length far past the cap.
    let mut oversized = good;
    oversized[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
    match read_frame(&mut oversized.as_slice(), 1 << 16) {
        Err(ProtoError::FrameTooLarge { max, .. }) => assert_eq!(max, 1 << 16),
        other => panic!("oversized frame not refused: {other:?}"),
    }
}

#[test]
fn random_garbage_is_rejected_without_panic() {
    let mut rng = StdRng::seed_from_u64(0x51_b6);
    for _ in 0..200 {
        let len = rng.gen_range(0..256);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        assert!(
            read_frame(&mut garbage.as_slice(), DEFAULT_MAX_FRAME_BYTES).is_err(),
            "random garbage decoded as a frame"
        );
        // Raw garbage fed to the payload decoders must also fail typed.
        let _ = decode_request_batch(&garbage);
        let _ = decode_response_batch(&garbage);
    }
}

#[test]
fn garbage_payload_in_a_valid_frame_is_rejected() {
    let mut rng = StdRng::seed_from_u64(0x51_b7);
    for _ in 0..100 {
        let len = rng.gen_range(1..128);
        // Valid framing (magic, version, CRC all correct) around a payload
        // that is not a well-formed batch: the frame layer accepts it, the
        // body decoder refuses it.
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        let frame = encode_frame(0, 3, &garbage);
        let decoded = read_frame(&mut frame.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(decoded.payload, garbage);
        // Either decode fails, or (rarely) the bytes happen to parse — both
        // are fine; a panic is not.
        let _ = decode_request_batch(&decoded.payload);
    }
}
