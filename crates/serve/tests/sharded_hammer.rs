//! Sharded-runtime hammer: rolling shard-by-shard swaps race concurrent
//! fan-out load. Every answer must match the sequential oracle (no torn
//! snapshots, no blended shard versions inside one shard), no admitted
//! sub-request may be lost, and per-shard shed accounting must stay exact.

use setlearn_serve::{ServeConfig, ServeError, ServeTask, ShardedRuntime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: u64 = 3;
const ROUNDS: u64 = 50;

/// One shard's model: payload derived from (shard, version) so a torn or
/// half-published snapshot fails its checksum inside the worker.
struct ShardModel {
    shard: u64,
    version: u64,
    payload: Vec<u64>,
    checksum: u64,
}

fn checksum(payload: &[u64]) -> u64 {
    payload.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, &v| {
        (acc ^ v).wrapping_mul(0x1000_0000_01b3)
    })
}

impl ShardModel {
    fn new(shard: u64, version: u64) -> Self {
        let seed = shard.wrapping_mul(0x9e37_79b9).wrapping_add(version.wrapping_mul(1_000_003));
        let payload: Vec<u64> = (0..512).map(|i| seed.wrapping_add(i)).collect();
        let checksum = checksum(&payload);
        ShardModel { shard, version, payload, checksum }
    }

    fn verify(&self) {
        assert_eq!(
            checksum(&self.payload),
            self.checksum,
            "torn snapshot at shard {} version {}",
            self.shard,
            self.version
        );
    }
}

/// Version-independent per-shard oracle contribution.
fn oracle(shard: u64, r: u64) -> u64 {
    r.wrapping_mul(2654435761).rotate_left(17) ^ shard.wrapping_mul(0xdead_beef)
}

/// The sum-aggregated oracle across all shards.
fn fanout_oracle(r: u64) -> u64 {
    (0..SHARDS).fold(0u64, |acc, s| acc.wrapping_add(oracle(s, r)))
}

impl ServeTask for ShardModel {
    type Request = u64;
    type Response = (u64, u64);
    const NAME: &'static str = "hammer_sharded";

    fn serve_batch(&self, requests: &[u64]) -> Vec<(u64, u64)> {
        self.verify();
        requests.iter().map(|&r| (oracle(self.shard, r), self.version)).collect()
    }
}

/// Rolling swaps under load: each round replaces every shard's model one
/// shard at a time while submitters hammer the fan-out path.
#[test]
fn rolling_swaps_under_load_lose_nothing() {
    const SUBMITTERS: u64 = 3;
    const REQUESTS_PER_SUBMITTER: u64 = 300;

    let runtime = Arc::new(ShardedRuntime::start(
        (0..SHARDS).map(|s| ShardModel::new(s, 0)).collect(),
        ServeConfig {
            threads: 3,
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            queue_capacity: 4096,
        },
        |parts: Vec<(u64, u64)>| {
            parts
                .into_iter()
                .fold((0u64, 0u64), |acc, (v, version)| {
                    (acc.0.wrapping_add(v), acc.1.max(version))
                })
        },
    ));
    let answered = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        let mut submitters = Vec::new();
        for t in 0..SUBMITTERS {
            let runtime = Arc::clone(&runtime);
            let answered = Arc::clone(&answered);
            submitters.push(s.spawn(move || {
                for i in 0..REQUESTS_PER_SUBMITTER {
                    let request = t * REQUESTS_PER_SUBMITTER + i;
                    // Sheds are the documented overload contract; retry them.
                    let (value, version) = loop {
                        match runtime.call(request) {
                            Ok(answer) => break answer,
                            Err(ServeError::Overloaded) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    };
                    assert_eq!(
                        value,
                        fanout_oracle(request),
                        "fan-out answer diverged from the oracle"
                    );
                    assert!(version <= ROUNDS, "answer from a never-published version");
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }

        // Writer: ROUNDS rolling swaps, each touching every shard once, one
        // shard at a time, paced against submitter progress so the swaps
        // overlap the load instead of finishing first.
        let writer = {
            let runtime = Arc::clone(&runtime);
            let answered = Arc::clone(&answered);
            s.spawn(move || {
                for round in 1..=ROUNDS {
                    let versions = runtime
                        .rolling_swap((0..SHARDS).map(|s| ShardModel::new(s, round)).collect());
                    assert_eq!(versions, vec![round; SHARDS as usize]);
                    while answered.load(Ordering::Relaxed)
                        < round * (SUBMITTERS * REQUESTS_PER_SUBMITTER) / (ROUNDS + 1)
                    {
                        std::thread::yield_now();
                    }
                }
            })
        };

        for submitter in submitters {
            submitter.join().expect("submitter panicked (lost or torn answer?)");
        }
        writer.join().expect("writer panicked");
    });

    let total = SUBMITTERS * REQUESTS_PER_SUBMITTER;
    assert_eq!(answered.load(Ordering::Relaxed), total, "requests lost");
    let runtime = Arc::try_unwrap(runtime).unwrap_or_else(|_| panic!("runtime still shared"));
    let report = runtime.shutdown();
    assert_eq!(report.per_shard.len(), SHARDS as usize);
    for (shard, r) in report.per_shard.iter().enumerate() {
        // Zero discrepancies: every admitted sub-request was answered, every
        // refused one was counted as shed at admission — nothing torn or
        // double-counted even while this shard's model was mid-swap.
        assert_eq!(r.completed, r.submitted, "shard {shard}: admitted ≠ answered");
        assert_eq!(r.swaps, ROUNDS, "shard {shard}: swap count");
        assert_eq!(r.panicked_batches, 0, "shard {shard}: torn snapshot reached serve_batch");
        assert!(
            r.completed >= total,
            "shard {shard}: answered fewer sub-requests than oracle-checked fan-outs"
        );
    }
}

/// Swapping a single shard mid-serve leaves the other shards' versions and
/// accounting untouched — the per-shard lifecycle is genuinely independent.
#[test]
fn single_shard_swap_is_isolated() {
    let runtime = ShardedRuntime::start(
        (0..SHARDS).map(|s| ShardModel::new(s, 0)).collect(),
        ServeConfig {
            threads: 3,
            max_batch: 8,
            max_delay: Duration::from_micros(100),
            queue_capacity: 1024,
        },
        |parts: Vec<(u64, u64)>| {
            parts
                .into_iter()
                .fold((0u64, 0u64), |acc, (v, version)| {
                    (acc.0.wrapping_add(v), acc.1.max(version))
                })
        },
    );
    for r in 0..100u64 {
        assert_eq!(runtime.call(r).unwrap().0, fanout_oracle(r));
    }
    runtime.swap_shard(1, ShardModel::new(1, 7));
    for r in 100..200u64 {
        let (value, version) = runtime.call(r).unwrap();
        assert_eq!(value, fanout_oracle(r), "answers unchanged by a same-oracle swap");
        assert_eq!(version, 7, "the swapped shard's version is visible");
    }
    let report = runtime.shutdown();
    assert_eq!(report.swaps(), 1);
    assert_eq!(report.per_shard[0].swaps, 0);
    assert_eq!(report.per_shard[1].swaps, 1);
    assert_eq!(report.per_shard[2].swaps, 0);
    for r in &report.per_shard {
        assert_eq!(r.completed, r.submitted);
        assert_eq!(r.shed, 0);
    }
}
