//! `SLP1` v1 ⇄ v2 interop properties: v1 frames keep decoding exactly as
//! before (no collection, byte-compatible layout), v2 frames round-trip
//! their length-prefixed collection id, and corruption of the id region —
//! truncation, oversized length, invalid bytes, bit flips — fails typed,
//! never with a panic or a hang.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use setlearn::wire::{QueryRequest, MAX_COLLECTION_ID_LEN};
use setlearn_serve::proto::{
    decode_request_batch, encode_frame, encode_frame_v2, encode_request_batch, read_frame,
    ProtoError, DEFAULT_MAX_FRAME_BYTES, HEADER_LEN, VERSION, VERSION_V2,
};

const ID_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";

fn random_name(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..=MAX_COLLECTION_ID_LEN);
    (0..len).map(|_| ID_CHARS[rng.gen_range(0..ID_CHARS.len())] as char).collect()
}

fn random_body(rng: &mut StdRng) -> Vec<u8> {
    let batch: Vec<QueryRequest> = (0..rng.gen_range(0..8))
        .map(|_| QueryRequest::new((0..rng.gen_range(0..16)).map(|_| rng.gen()).collect()))
        .collect();
    encode_request_batch(&batch)
}

#[test]
fn v2_frames_roundtrip_collection_id_and_body() {
    let mut rng = StdRng::seed_from_u64(0x52_01);
    for _ in 0..200 {
        let name = random_name(&mut rng);
        let body = random_body(&mut rng);
        let kind = rng.gen_range(0..3);
        let id = rng.gen::<u64>();
        let bytes = encode_frame_v2(kind, id, Some(&name), &body);
        let frame = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(frame.version, VERSION_V2);
        assert_eq!(frame.kind, kind);
        assert_eq!(frame.id, id);
        assert_eq!(frame.collection.as_deref(), Some(name.as_str()));
        // The id prefix is stripped: the remaining payload is the body,
        // bit for bit, and still decodes as the same batch.
        assert_eq!(frame.payload, body);
        assert_eq!(
            decode_request_batch(&frame.payload).unwrap(),
            decode_request_batch(&body).unwrap()
        );
    }
}

#[test]
fn v1_frames_stay_bit_compatible_and_carry_no_collection() {
    let mut rng = StdRng::seed_from_u64(0x52_02);
    for _ in 0..200 {
        let body = random_body(&mut rng);
        let kind = rng.gen_range(0..3);
        let id = rng.gen::<u64>();
        let bytes = encode_frame(kind, id, &body);
        // Layout contract: header, then the body verbatim — nothing about
        // the v2 extension leaks into v1 frames.
        assert_eq!(bytes.len(), HEADER_LEN + body.len());
        assert_eq!(&bytes[HEADER_LEN..], body.as_slice());
        assert_eq!(bytes[4], VERSION);
        let frame = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(frame.version, VERSION);
        assert_eq!(frame.collection, None);
        assert_eq!(frame.payload, body);
    }
}

#[test]
fn empty_v2_collection_id_means_default_routing() {
    let body = encode_request_batch(&[QueryRequest::new(vec![1, 2, 3])]);
    let bytes = encode_frame_v2(0, 9, None, &body);
    let frame = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(frame.version, VERSION_V2);
    assert_eq!(frame.collection, None, "length-0 id routes to the default collection");
    assert_eq!(frame.payload, body);
}

/// Builds a structurally valid frame (magic, CRC) whose *payload* starts
/// with arbitrary bytes, stamped with the v2 version. The CRC covers the
/// payload only, so this isolates the collection-id validation layer from
/// the CRC check.
fn v2_frame_with_raw_payload(payload: &[u8]) -> Vec<u8> {
    let mut bytes = encode_frame(0, 11, payload);
    bytes[4] = VERSION_V2;
    bytes
}

#[test]
fn truncated_collection_ids_fail_typed() {
    // The length byte claims more id bytes than the payload holds.
    for claimed in [1usize, 5, 64] {
        let mut payload = vec![claimed as u8];
        payload.extend(std::iter::repeat_n(b'a', claimed.saturating_sub(1)));
        let bytes = v2_frame_with_raw_payload(&payload);
        match read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES) {
            Err(ProtoError::BadPayload(_)) => {}
            other => panic!("truncated id (claimed {claimed}) not refused typed: {other:?}"),
        }
    }
}

#[test]
fn oversized_and_invalid_collection_ids_fail_typed() {
    // Length past the protocol cap.
    let mut oversized = vec![(MAX_COLLECTION_ID_LEN + 1) as u8];
    oversized.extend(std::iter::repeat_n(b'a', MAX_COLLECTION_ID_LEN + 1));
    // Bytes outside [A-Za-z0-9_-], and invalid UTF-8.
    let bad_char = vec![3u8, b'a', b'/', b'b'];
    let bad_utf8 = vec![2u8, 0xC3, 0x28];
    for payload in [oversized, bad_char, bad_utf8] {
        let bytes = v2_frame_with_raw_payload(&payload);
        match read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES) {
            Err(ProtoError::BadPayload(_)) => {}
            other => panic!("invalid collection id not refused typed: {other:?}"),
        }
    }
}

#[test]
fn bit_flips_anywhere_in_a_v2_frame_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x52_03);
    let body = encode_request_batch(&[QueryRequest::new(vec![7, 8, 9])]);
    let good = encode_frame_v2(0, 13, Some("tenant-a"), &body);
    for _ in 0..500 {
        let mut frame = good.clone();
        let idx = rng.gen_range(0..frame.len());
        frame[idx] ^= 1u8 << rng.gen_range(0u32..8);
        // A flip in the payload region (id prefix included) must trip the
        // CRC; a flip in the header must fail its own validation or —
        // rarely, e.g. the id byte of the frame — still decode. Either
        // way: return, never panic.
        match read_frame(&mut frame.as_slice(), 1 << 16) {
            Ok(_) | Err(_) => {}
        }
    }
}

#[test]
fn a_v1_body_reinterpreted_as_v2_cannot_hang_or_panic() {
    // The failure mode this pins down: a v1 client's payload read through
    // the v2 parser (first byte taken as an id length). Whatever the bytes,
    // the parser must return promptly — either a typed error or a decoded
    // frame whose body then fails batch validation — never block or panic.
    let mut rng = StdRng::seed_from_u64(0x52_04);
    for _ in 0..300 {
        let body = random_body(&mut rng);
        let bytes = v2_frame_with_raw_payload(&body);
        if let Ok(frame) = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES) {
            let _ = decode_request_batch(&frame.payload);
        }
    }
}
