//! End-to-end: the three real learned structures served through the
//! runtime, with answers cross-checked against the direct (sequential)
//! serve paths.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{
    BloomConfig, CardinalityConfig, IndexConfig, IndexStructure, LearnedBloom,
    LearnedCardinality, LearnedSetIndex, LearnedSetStructure,
};
use setlearn_data::{ElementSet, GeneratorConfig, SetCollection, SubsetIndex};
use setlearn_serve::{
    BloomTask, CardinalityTask, IndexTask, ServeConfig, ServeRuntime,
};
use std::sync::Arc;
use std::time::Duration;

fn quick_guided() -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 4,
        rounds: 1,
        epochs_per_round: 2,
        percentile: 0.9,
        batch_size: 64,
        learning_rate: 5e-3,
        seed: 1,
    }
}

fn small_collection() -> SetCollection {
    GeneratorConfig::sd(200, 11).generate()
}

fn queries(collection: &SetCollection, n: usize) -> Vec<ElementSet> {
    // Small vocabularies yield fewer distinct subsets than requested; callers
    // must size their assertions from the returned length.
    SubsetIndex::build(collection, 2).iter().take(n).map(|(s, _)| s.clone()).collect()
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_batch: 32,
        max_delay: Duration::from_micros(200),
        queue_capacity: 512,
    }
}

// The unified query API provides the reference answers here: the runtime
// must agree with direct (unserved) batch queries bit-for-bit.
#[test]
fn cardinality_through_the_runtime_matches_direct_serving() {
    let collection = small_collection();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided();
    cfg.max_subset_size = 2;
    let (estimator, _) = LearnedCardinality::build(&collection, &cfg);
    let qs = queries(&collection, 200);
    let expected: Vec<f64> =
        estimator.query_batch(&qs).into_iter().map(|o| o.value).collect();

    let runtime = ServeRuntime::start(CardinalityTask::new(estimator), serve_config());
    let tickets: Vec<_> = qs.iter().map(|q| runtime.submit(q.clone()).unwrap()).collect();
    for (ticket, want) in tickets.into_iter().zip(expected) {
        let got = ticket.wait().unwrap();
        assert!(got.value.is_finite());
        assert_eq!(got.value, want, "runtime answer diverged from direct query_batch");
    }
    let report = runtime.shutdown();
    assert_eq!(report.completed, qs.len() as u64);
    assert_eq!(report.shed, 0);
}

#[test]
fn index_through_the_runtime_matches_direct_serving() {
    let collection = Arc::new(small_collection());
    let cfg = IndexConfig {
        model: DeepSetsConfig::lsm(collection.num_elements()),
        guided: quick_guided(),
        max_subset_size: 2,
        range_length: 50.0,
        target: setlearn::tasks::PositionTarget::First,
    };
    let (index, _) = LearnedSetIndex::build(&collection, &cfg);
    let qs = queries(&collection, 150);
    let expected: Vec<Option<usize>> = index
        .lookup_batch_profiled(&collection, &qs)
        .into_iter()
        .map(|p| p.position)
        .collect();

    let runtime = ServeRuntime::start(
        IndexTask::new(IndexStructure { index, collection: Arc::clone(&collection) }),
        serve_config(),
    );
    let tickets: Vec<_> = qs.iter().map(|q| runtime.submit(q.clone()).unwrap()).collect();
    for (ticket, want) in tickets.into_iter().zip(expected) {
        assert_eq!(ticket.wait().unwrap().value, want);
    }
    let report = runtime.shutdown();
    assert_eq!(report.completed, qs.len() as u64);
}

#[test]
fn bloom_through_the_runtime_matches_direct_serving() {
    let collection = small_collection();
    let mut cfg = BloomConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.epochs = 4;
    let (filter, _) = LearnedBloom::build_from_collection(&collection, 300, 300, 2, &cfg);
    let qs = queries(&collection, 150);
    let expected: Vec<bool> = filter.query_batch(&qs).into_iter().map(|o| o.value).collect();

    let runtime = ServeRuntime::start(BloomTask::new(filter), serve_config());
    let tickets: Vec<_> = qs.iter().map(|q| runtime.submit(q.clone()).unwrap()).collect();
    for (ticket, want) in tickets.into_iter().zip(expected) {
        assert_eq!(ticket.wait().unwrap().value, want);
    }
    let report = runtime.shutdown();
    assert_eq!(report.completed, qs.len() as u64);
    assert!(report.batches > 0);
}

/// Hot-swapping a retrained cardinality model mid-stream: answers always
/// come from exactly one of the two published estimators, never a blend.
#[test]
fn cardinality_hot_swap_never_blends_models() {
    let collection = small_collection();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided();
    cfg.max_subset_size = 2;
    let (first, _) = LearnedCardinality::build(&collection, &cfg);
    cfg.guided.seed = 99; // a genuinely different model
    cfg.guided.warmup_epochs = 5;
    let (second, _) = LearnedCardinality::build(&collection, &cfg);

    let qs = queries(&collection, 60);
    let from_first: Vec<f64> = first.query_batch(&qs).into_iter().map(|o| o.value).collect();
    let from_second: Vec<f64> =
        second.query_batch(&qs).into_iter().map(|o| o.value).collect();

    let runtime = ServeRuntime::start(
        CardinalityTask::new(first),
        ServeConfig { threads: 2, max_batch: 4, ..serve_config() },
    );
    // Interleave submissions with the swap.
    let before: Vec<_> = qs.iter().take(30).map(|q| runtime.submit(q.clone()).unwrap()).collect();
    runtime.swap(CardinalityTask::new(second));
    let after: Vec<_> =
        qs.iter().skip(30).map(|q| runtime.submit(q.clone()).unwrap()).collect();

    for (i, ticket) in before.into_iter().chain(after).enumerate() {
        let got = ticket.wait().unwrap().value;
        assert!(
            got == from_first[i] || got == from_second[i],
            "query {i}: answer {got} matches neither model ({} / {})",
            from_first[i],
            from_second[i]
        );
    }
    let report = runtime.shutdown();
    assert_eq!(report.swaps, 1);
    assert_eq!(report.completed, 60);
}
