//! Concurrent-correctness hammer tests: writer swaps racing reader threads,
//! and overload behavior under sustained pressure.

use setlearn_serve::{
    HotSwap, ServeConfig, ServeError, ServeRuntime, ServeTask,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A snapshot whose payload is derived from its version: any torn or
/// half-published read shows up as a checksum mismatch.
struct VersionedModel {
    version: u64,
    payload: Vec<u64>,
    checksum: u64,
}

fn checksum(payload: &[u64]) -> u64 {
    payload.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, &v| {
        (acc ^ v).wrapping_mul(0x1000_0000_01b3)
    })
}

impl VersionedModel {
    fn new(version: u64) -> Self {
        // A non-trivial payload so a torn publish would have many chances to
        // expose a mixed state.
        let payload: Vec<u64> = (0..1024).map(|i| version.wrapping_mul(1_000_003) + i).collect();
        let checksum = checksum(&payload);
        VersionedModel { version, payload, checksum }
    }

    fn verify(&self) {
        assert_eq!(
            checksum(&self.payload),
            self.checksum,
            "torn snapshot at version {}",
            self.version
        );
        assert_eq!(self.payload[0], self.version.wrapping_mul(1_000_003));
    }
}

impl ServeTask for VersionedModel {
    type Request = u64;
    type Response = (u64, u64);
    const NAME: &'static str = "hammer_versioned";

    fn serve_batch(&self, requests: &[u64]) -> Vec<(u64, u64)> {
        // Recompute the checksum on every batch: a torn snapshot fails here,
        // inside the worker, as well as at the caller.
        self.verify();
        // The oracle function is version-independent; the version tag rides
        // along so callers can check swap visibility.
        requests.iter().map(|&r| (oracle(r), self.version)).collect()
    }
}

/// Version-independent request function — the sequential oracle.
fn oracle(r: u64) -> u64 {
    r.wrapping_mul(2654435761).rotate_left(17) ^ 0xdead_beef
}

/// N writer swaps race M direct readers on the HotSwap slot itself: every
/// observed snapshot must be fully consistent and versions must never move
/// backwards for any single reader.
#[test]
fn hotswap_hammer_direct_readers() {
    const SWAPS: u64 = 150;
    const READERS: usize = 4;

    let swap = Arc::new(HotSwap::new(VersionedModel::new(0)));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let swap = Arc::clone(&swap);
            let stop = Arc::clone(&stop);
            readers.push(s.spawn(move || {
                let mut cached = swap.cache();
                let mut last_version = 0u64;
                let mut observed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = swap.refresh(&mut cached);
                    snapshot.verify();
                    assert!(
                        snapshot.version >= last_version,
                        "version went backwards: {} -> {}",
                        last_version,
                        snapshot.version
                    );
                    last_version = snapshot.version;
                    observed += 1;
                }
                observed
            }));
        }

        // Writer: publish SWAPS fully-built models as fast as possible.
        for v in 1..=SWAPS {
            swap.publish(VersionedModel::new(v));
            if v % 16 == 0 {
                // Brief yield so readers interleave on small machines.
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);

        for reader in readers {
            let observed = reader.join().expect("reader panicked (torn snapshot?)");
            assert!(observed > 0, "reader never observed a snapshot");
        }
    });
    assert_eq!(swap.swap_count(), SWAPS);
    assert_eq!(swap.load().version, SWAPS);
}

/// ≥100 swaps race a live runtime under concurrent request load: no request
/// is lost or torn, every answer matches the sequential oracle, and the
/// version tags are drawn from published versions only.
#[test]
fn runtime_hammer_swaps_under_load() {
    const SWAPS: u64 = 120;
    const SUBMITTERS: usize = 3;
    const REQUESTS_PER_SUBMITTER: u64 = 400;

    let runtime = Arc::new(ServeRuntime::start(
        VersionedModel::new(0),
        ServeConfig {
            threads: 2,
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            queue_capacity: 4096,
        },
    ));
    let answered = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        let mut submitters = Vec::new();
        for t in 0..SUBMITTERS as u64 {
            let runtime = Arc::clone(&runtime);
            let answered = Arc::clone(&answered);
            submitters.push(s.spawn(move || {
                let mut max_seen_version = 0u64;
                for i in 0..REQUESTS_PER_SUBMITTER {
                    let request = t * REQUESTS_PER_SUBMITTER + i;
                    // The queue is sized generously, but a 1-core scheduler
                    // can still starve workers: retry sheds, they are the
                    // documented client contract.
                    let answer = loop {
                        match runtime.call(request) {
                            Ok(answer) => break answer,
                            Err(ServeError::Overloaded) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    };
                    let (value, version) = answer;
                    assert_eq!(value, oracle(request), "answer diverged from the oracle");
                    // Versions are not monotone per submitter (two workers
                    // can momentarily serve different snapshots); they must
                    // only ever come from actually-published models —
                    // per-reader monotonicity is the direct-reader hammer's
                    // job.
                    assert!(version <= SWAPS, "answer from a never-published version");
                    max_seen_version = max_seen_version.max(version);
                    answered.fetch_add(1, Ordering::Relaxed);
                }
                max_seen_version
            }));
        }

        // Writer thread: publish swaps while requests are in flight.
        let writer = {
            let runtime = Arc::clone(&runtime);
            let answered = Arc::clone(&answered);
            s.spawn(move || {
                for v in 1..=SWAPS {
                    runtime.swap(VersionedModel::new(v));
                    // Pace swaps against progress so they overlap the load.
                    while answered.load(Ordering::Relaxed)
                        < v * (SUBMITTERS as u64 * REQUESTS_PER_SUBMITTER) / (SWAPS + 1)
                    {
                        std::thread::yield_now();
                    }
                }
            })
        };

        for submitter in submitters {
            submitter.join().expect("submitter panicked");
        }
        writer.join().expect("writer panicked");
    });

    let total = SUBMITTERS as u64 * REQUESTS_PER_SUBMITTER;
    assert_eq!(answered.load(Ordering::Relaxed), total, "requests lost");
    let runtime = Arc::try_unwrap(runtime).unwrap_or_else(|_| panic!("runtime still shared"));
    let report = runtime.shutdown();
    assert_eq!(report.swaps, SWAPS);
    assert_eq!(report.completed, report.submitted, "admitted ≠ answered");
    assert!(report.completed >= total, "every oracle-checked request was admitted");
    assert_eq!(report.panicked_batches, 0, "no torn snapshot reached serve_batch");
}

/// A deliberately slow task so the queue backs up.
struct Sluggish;
impl ServeTask for Sluggish {
    type Request = u64;
    type Response = u64;
    const NAME: &'static str = "hammer_sluggish";
    fn serve_batch(&self, requests: &[u64]) -> Vec<u64> {
        std::thread::sleep(Duration::from_millis(2));
        requests.to_vec()
    }
}

/// Overload: a tiny queue over a slow task must shed with the typed error,
/// count every shed, and keep buffered memory bounded by the capacity.
#[test]
fn overload_sheds_are_typed_counted_and_bounded() {
    const CAPACITY: usize = 8;
    let runtime = ServeRuntime::start(
        Sluggish,
        ServeConfig {
            threads: 1,
            max_batch: 2,
            max_delay: Duration::from_micros(50),
            queue_capacity: CAPACITY,
        },
    );

    let mut tickets = Vec::new();
    let mut sheds = 0u64;
    let mut max_depth = 0usize;
    let deadline = Instant::now() + Duration::from_millis(200);
    let mut i = 0u64;
    while Instant::now() < deadline {
        match runtime.submit(i) {
            Ok(ticket) => tickets.push((i, ticket)),
            Err(ServeError::Overloaded) => sheds += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
        max_depth = max_depth.max(runtime.queue_depth());
        i += 1;
    }
    assert!(sheds > 0, "the queue never overflowed — load too light");
    assert!(
        max_depth <= CAPACITY,
        "queue depth {max_depth} exceeded capacity {CAPACITY}: memory unbounded"
    );
    assert_eq!(runtime.stats().shed(), sheds, "shed counter diverged from typed errors");

    // Every admitted request is still answered correctly on drain.
    let report = runtime.shutdown();
    for (request, ticket) in tickets {
        assert_eq!(ticket.wait().expect("admitted request dropped"), request);
    }
    assert_eq!(report.completed, report.submitted);
    assert_eq!(report.shed, sheds);
    assert_eq!(report.submitted + report.shed, i, "admission accounting leaked requests");
}
