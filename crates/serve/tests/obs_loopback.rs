//! Loopback tests for the observability plane: wire-scrapable stats and
//! health frames, client-supplied trace-id propagation into slow-query
//! records and spans (including through the sharded fan-out), the typed
//! refusal of admin kinds this server predates, and the drain-grace window
//! where health flips to *not ready* while frames are still answered.

use setlearn::tasks::{LearnedSetStructure, QueryOutcome};
use setlearn::wire::{QueryRequest, QueryValue, WireTask};
use setlearn_obs::{parse_slow_jsonl, RecordKind};
use setlearn_serve::net::{NetClient, NetConfig, NetError, NetServer, WireBackend};
use setlearn_serve::proto::{
    decode_response_batch, encode_frame, read_frame, ErrorCode, ProtoError, StatsFormat,
};
use setlearn_serve::{ServeConfig, ServeRuntime, ShardedRuntime, StructureTask};
use setlearn_data::ElementSet;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Mock "cardinality" answering 2 × |query| after a short sleep, so stage
/// durations (inference in particular) are reliably nonzero; queries
/// containing 666 raise the fallback flag for degradation plumbing.
#[derive(Clone)]
struct PacedCard;

impl LearnedSetStructure for PacedCard {
    type Output = f64;
    const NAME: &'static str = "cardinality";

    fn query(&self, q: &[u32]) -> QueryOutcome<f64> {
        std::thread::sleep(Duration::from_millis(2));
        if q.contains(&666) {
            QueryOutcome {
                value: 0.0,
                fallback: Some(setlearn::hybrid::FallbackReason::NonFinite),
                bound_miss: false,
            }
        } else {
            QueryOutcome::clean(q.len() as f64 * 2.0)
        }
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<f64>> {
        queries.iter().map(|q| self.query(q)).collect()
    }

    fn query_batch_parallel(&self, queries: &[ElementSet], _threads: usize) -> Vec<QueryOutcome<f64>> {
        self.query_batch(queries)
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_batch: 16,
        max_delay: Duration::from_micros(100),
        queue_capacity: 256,
    }
}

fn start_single(config: NetConfig) -> (NetServer, Arc<ServeRuntime<StructureTask<PacedCard>>>) {
    let runtime = Arc::new(ServeRuntime::start(StructureTask::new(PacedCard), serve_config()));
    let backend: Arc<dyn WireBackend> = Arc::clone(&runtime) as _;
    let server = NetServer::bind("127.0.0.1:0", backend, config).unwrap();
    (server, runtime)
}

#[test]
fn stats_frame_answers_prometheus_with_stage_labelled_histograms() {
    let (server, runtime) = start_single(NetConfig::default());
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![1, 2, 3])]).unwrap();

    let text = client.stats(StatsFormat::Prometheus).unwrap();
    setlearn_obs::validate_prometheus(&text).expect("scrape output parses");
    assert!(text.contains("setlearn_request_stage_seconds"), "stage family exposed");
    for stage in ["decode", "queue", "inference", "encode"] {
        assert!(
            text.contains(&format!("stage=\"{stage}\"")),
            "stage label {stage:?} missing from exposition"
        );
    }

    // The JSON format carries the same snapshot, machine-parseable.
    let json = client.stats(StatsFormat::Json).unwrap();
    let snap = setlearn_obs::from_json(&json).expect("stats JSON parses");
    assert!(
        snap.histograms.iter().any(|h| h.key.name == "setlearn_request_stage_seconds"),
        "stage family present in JSON snapshot"
    );
    server.shutdown();
    drop(runtime);
}

#[test]
fn client_trace_id_reaches_slow_log_and_spans_through_sharded_fanout() {
    // Threshold zero: every query is a "slow" query, deterministically.
    let config = NetConfig {
        slow_query_threshold: Some(Duration::ZERO),
        ..NetConfig::default()
    };
    let runtime = Arc::new(ShardedRuntime::start(
        vec![StructureTask::new(PacedCard), StructureTask::new(PacedCard)],
        serve_config(),
        |parts: Vec<QueryOutcome<f64>>| {
            let mut total = QueryOutcome::clean(0.0);
            for part in parts {
                total.value += part.value;
                total.fallback = total.fallback.or(part.fallback);
                total.bound_miss |= part.bound_miss;
            }
            total
        },
    ));
    let backend: Arc<dyn WireBackend> = Arc::clone(&runtime) as _;
    let server = NetServer::bind("127.0.0.1:0", backend, config).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    setlearn_obs::set_level(setlearn_obs::TelemetryLevel::Full);
    let trace_id: u64 = 0xCAFE_F00D_0000_0042;
    let outcomes = client
        .query_batch_traced(
            WireTask::Cardinality,
            &[QueryRequest::new(vec![666, 1, 2])],
            Some(trace_id),
        )
        .unwrap();
    setlearn_obs::set_level(setlearn_obs::TelemetryLevel::Metrics);
    match outcomes[0].as_ref().unwrap().value {
        QueryValue::Cardinality(v) => assert_eq!(v, 0.0, "fallback answers ride the wire"),
        ref other => panic!("wrong value kind: {other:?}"),
    }

    // The record is retrievable both in-process and over the wire, carries
    // the client's id verbatim, and its breakdown reflects the fan-out.
    let jsonl = client.stats(StatsFormat::SlowQueries).unwrap();
    let records = parse_slow_jsonl(&jsonl).expect("slow-query JSONL parses");
    let record = records
        .iter()
        .find(|r| r.trace_id == trace_id)
        .expect("client-supplied trace id in the slow-query log");
    assert_eq!(record.task, "cardinality");
    assert_eq!(record.shard_count, 2);
    assert_eq!(record.set_size, 3);
    assert!(record.fallback, "degradation flag recorded");
    assert!(!record.bound_miss);
    assert!(record.total_us > 0);
    assert!(record.stages.inference_us > 0, "slowest shard's inference time recorded");
    assert!(
        server.slow_queries().iter().any(|r| r.trace_id == trace_id),
        "record also visible via the server handle"
    );

    // At Full level the request left a span naming the same trace id.
    let spans = setlearn_obs::tracer().drain();
    assert!(
        spans.iter().any(|r| {
            matches!(r.kind, RecordKind::Span)
                && r.name == "net_request"
                && r.fields.iter().any(|f| {
                    f.key == "trace_id" && f.text.as_deref() == Some(&trace_id.to_string())
                })
        }),
        "net_request span with the client's trace id"
    );

    server.shutdown();
    drop(runtime);
}

#[test]
fn health_reflects_drain_state_through_the_grace_window() {
    let config = NetConfig {
        allow_remote_shutdown: true,
        drain_grace: Duration::from_millis(400),
        ..NetConfig::default()
    };
    let (server, runtime) = start_single(config);
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let report = client.health().unwrap();
    assert!(report.ready, "freshly started server is ready: {:?}", report.reasons);
    assert!(!report.draining);
    assert_eq!(report.shards, 1);
    assert!(report.queue_capacity >= report.queue_depth);

    client.shutdown_server().unwrap();
    assert!(server.is_draining(), "drain flag raised at the ack");

    // Inside the grace window the same connection still serves queries —
    // but health now answers *not ready* so balancers stop routing here.
    let report = client.health().unwrap();
    assert!(!report.ready, "draining server is not ready");
    assert!(report.draining);
    assert!(report.reasons.iter().any(|r| r.contains("draining")), "{:?}", report.reasons);
    let outcomes =
        client.query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![7, 8])]).unwrap();
    assert!(outcomes[0].is_ok(), "queries are still answered during the grace window");

    // The grace timer then promotes the drain to a full shutdown.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !server.is_shutting_down() {
        assert!(Instant::now() < deadline, "grace period never promoted to shutdown");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    drop(runtime);
}

#[test]
fn unknown_admin_kinds_are_refused_typed_and_the_connection_survives() {
    let (server, runtime) = start_single(NetConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // 0xEF is inside the reserved admin space but unknown to this server.
    raw.write_all(&encode_frame(0xEF, 3, &[])).unwrap();
    let resp = read_frame(&mut raw, 1 << 20).unwrap();
    assert_eq!(resp.kind, 0xEF, "refusal echoes the probed kind");
    match decode_response_batch(&resp.payload) {
        Err(ProtoError::Remote(ErrorCode::AdminUnsupported)) => {}
        other => panic!("expected AdminUnsupported, got {other:?}"),
    }
    drop(raw);

    // A typed admin refusal never poisons a client's stream.
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    match client.stats(StatsFormat::Prometheus) {
        Ok(_) => {}
        Err(NetError::Proto(ProtoError::Remote(code))) => {
            panic!("stats refused on a server that supports it: {code}")
        }
        Err(other) => panic!("stats failed: {other}"),
    }
    client.ping().unwrap();
    server.shutdown();
    drop(runtime);
}
