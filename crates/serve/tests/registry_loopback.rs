//! End-to-end multi-tenant serving over loopback TCP: one registry server
//! hosting several collections answers exactly like dedicated solo servers,
//! v1 clients keep working against the default collection, admin frames
//! manage residency over the wire, and per-tenant quotas shed one tenant
//! without touching another.

use setlearn::model::DeepSetsConfig;
use setlearn::persist::{
    save_manifest, CollectionManifest, COLLECTION_MODEL, COLLECTION_SETS,
};
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn::wire::{QueryRequest, QueryValue, WireTask};
use setlearn_data::{GeneratorConfig, SetCollection};
use setlearn_serve::net::{NetClient, NetConfig, NetError, NetServer, WireBackend};
use setlearn_serve::proto::{ErrorCode, ProtoError};
use setlearn_serve::{
    CardinalityTask, CollectionRegistry, QuotaConfig, RegistryConfig, ServeConfig,
    ServeRuntime,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tmproot(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "setlearn-regloop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quick_serve() -> ServeConfig {
    ServeConfig {
        threads: 1,
        max_batch: 8,
        max_delay: Duration::from_micros(50),
        queue_capacity: 64,
    }
}

/// Trains and persists a tiny cardinality collection under `root/<name>/`.
fn write_collection(root: &Path, name: &str, seed: u64) {
    let sets = GeneratorConfig {
        num_sets: 30,
        vocab: 40,
        zipf_s: 0.0,
        min_set_size: 2,
        max_set_size: 5,
        seed,
    }
    .generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(sets.num_elements()));
    cfg.guided.warmup_epochs = 1;
    cfg.guided.rounds = 0;
    cfg.guided.epochs_per_round = 1;
    cfg.max_subset_size = 2;
    let (est, _) = LearnedCardinality::build(&sets, &cfg);
    let dir = root.join(name);
    save_manifest(
        &dir,
        &CollectionManifest { task: "cardinality".into(), shards: None, shard_by: None },
    )
    .unwrap();
    setlearn::persist::save_json(&est, &dir.join(COLLECTION_MODEL)).unwrap();
    setlearn::persist::save_json(&sets, &dir.join(COLLECTION_SETS)).unwrap();
}

/// A dedicated single-collection server over the model persisted at
/// `root/<name>/` — the pre-registry serving topology, used as the
/// bit-identity reference.
fn solo_server(root: &Path, name: &str) -> (NetServer, std::net::SocketAddr) {
    let est: LearnedCardinality =
        setlearn::persist::load_json(&root.join(name).join(COLLECTION_MODEL)).unwrap();
    let runtime = Arc::new(ServeRuntime::start(CardinalityTask::new(est), quick_serve()));
    let backend: Arc<dyn WireBackend> = runtime as _;
    let server = NetServer::bind("127.0.0.1:0", backend, NetConfig::default()).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

fn registry_server(
    root: &Path,
    default: Option<&str>,
    quota: Option<QuotaConfig>,
) -> (NetServer, std::net::SocketAddr, Arc<CollectionRegistry>) {
    let mut config = RegistryConfig::new(root);
    config.serve = quick_serve();
    config.default_collection = default.map(str::to_string);
    config.quota = quota;
    let registry = Arc::new(CollectionRegistry::new(config));
    let server =
        NetServer::bind_registry("127.0.0.1:0", Arc::clone(&registry), NetConfig::default())
            .unwrap();
    let addr = server.local_addr();
    (server, addr, registry)
}

fn requests() -> Vec<QueryRequest> {
    (0..20).map(|i| QueryRequest::new(vec![i % 7, (i * 3) % 11 + 1])).collect()
}

fn cardinalities(outcomes: &[setlearn_serve::proto::WireOutcome]) -> Vec<u64> {
    outcomes
        .iter()
        .map(|o| match o.as_ref().unwrap().value {
            QueryValue::Cardinality(v) => v.to_bits(),
            ref other => panic!("wrong value kind: {other:?}"),
        })
        .collect()
}

#[test]
fn registry_answers_each_tenant_bit_identically_to_solo_servers() {
    let root = tmproot("two-tenant");
    write_collection(&root, "tenant-a", 7);
    write_collection(&root, "tenant-b", 8);
    let (solo_a, addr_a) = solo_server(&root, "tenant-a");
    let (solo_b, addr_b) = solo_server(&root, "tenant-b");
    let (server, addr, _registry) = registry_server(&root, Some("tenant-a"), None);
    let queries = requests();

    let want_a = cardinalities(
        &NetClient::connect(addr_a)
            .unwrap()
            .query_batch(WireTask::Cardinality, &queries)
            .unwrap(),
    );
    let want_b = cardinalities(
        &NetClient::connect(addr_b)
            .unwrap()
            .query_batch(WireTask::Cardinality, &queries)
            .unwrap(),
    );
    assert_ne!(want_a, want_b, "the two tenants trained genuinely different models");

    // v2 clients address each tenant explicitly; answers are bit-identical
    // to the dedicated servers.
    let mut client_a = NetClient::connect(addr).unwrap().with_collection("tenant-a");
    let mut client_b = NetClient::connect(addr).unwrap().with_collection("tenant-b");
    let got_a =
        cardinalities(&client_a.query_batch(WireTask::Cardinality, &queries).unwrap());
    let got_b =
        cardinalities(&client_b.query_batch(WireTask::Cardinality, &queries).unwrap());
    assert_eq!(got_a, want_a, "tenant-a through the registry diverged from its solo server");
    assert_eq!(got_b, want_b, "tenant-b through the registry diverged from its solo server");

    // A plain v1 client (no collection set) rides to the default collection
    // and sees tenant-a's answers unchanged.
    let mut v1 = NetClient::connect(addr).unwrap();
    v1.ping().unwrap();
    let got_default =
        cardinalities(&v1.query_batch(WireTask::Cardinality, &queries).unwrap());
    assert_eq!(got_default, want_a, "v1 default routing diverged from the solo server");

    server.shutdown();
    solo_a.shutdown();
    solo_b.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unknown_collections_refuse_typed_and_the_connection_survives() {
    let root = tmproot("unknown");
    write_collection(&root, "tenant-a", 9);
    let (server, addr, _registry) = registry_server(&root, Some("tenant-a"), None);

    let mut ghost = NetClient::connect(addr).unwrap().with_collection("ghost");
    match ghost.query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![1, 2])]) {
        Err(NetError::Proto(ProtoError::Remote(ErrorCode::UnknownCollection))) => {}
        other => panic!("expected UnknownCollection, got {other:?}"),
    }
    // The refusal is per-frame: the same connection re-addressed works.
    ghost.set_collection(Some("tenant-a".into()));
    let outcomes =
        ghost.query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![1, 2])]).unwrap();
    assert!(outcomes[0].is_ok());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn admin_frames_list_attach_and_detach_over_the_wire() {
    let root = tmproot("admin");
    write_collection(&root, "tenant-a", 11);
    write_collection(&root, "tenant-b", 12);
    let (server, addr, registry) = registry_server(&root, Some("tenant-a"), None);
    let mut admin = NetClient::connect(addr).unwrap();

    // Before any query: both discovered, neither resident.
    let rows = admin.collections().unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|c| !c.resident && c.task == WireTask::Cardinality));
    assert!(rows.iter().any(|c| c.name == "tenant-a"));
    assert!(rows.iter().any(|c| c.name == "tenant-b"));

    // First query makes tenant-b resident; the listing reflects it.
    let mut client_b = NetClient::connect(addr).unwrap().with_collection("tenant-b");
    client_b.query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![3, 4])]).unwrap();
    let rows = admin.collections().unwrap();
    let b = rows.iter().find(|c| c.name == "tenant-b").unwrap();
    assert!(b.resident, "first query loads the collection");
    assert_eq!(registry.resident_count(), 1);

    // Detach refuses further frames; attach restores service.
    admin.detach_collection("tenant-b").unwrap();
    match client_b.query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![3, 4])]) {
        Err(NetError::Proto(ProtoError::Remote(ErrorCode::UnknownCollection))) => {}
        other => panic!("detached collection still answered: {other:?}"),
    }
    admin.attach_collection("tenant-b").unwrap();
    let outcomes = client_b
        .query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![3, 4])])
        .unwrap();
    assert!(outcomes[0].is_ok());
    // Attaching a name that never existed is a typed error.
    match admin.attach_collection("ghost") {
        Err(NetError::Proto(ProtoError::Remote(ErrorCode::UnknownCollection))) => {}
        other => panic!("attach of unknown collection: {other:?}"),
    }

    // The extended health probe carries registry residency.
    let report = admin.health_extended().unwrap();
    assert!(report.resident_collections >= 1);
    assert!(report.collection_pending.iter().any(|(name, _)| name == "tenant-b"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn quota_exhaustion_sheds_one_tenant_while_the_other_answers() {
    let root = tmproot("quota");
    write_collection(&root, "tenant-a", 13);
    write_collection(&root, "tenant-b", 14);
    // A bucket of 4 with a negligible refill: tenant-a exhausts it fast.
    let quota = QuotaConfig { rate: 0.001, burst: 4.0 };
    let (server, addr, _registry) = registry_server(&root, None, Some(quota));

    let mut client_a = NetClient::connect(addr).unwrap().with_collection("tenant-a");
    let mut shed = false;
    for i in 0..8 {
        match client_a.query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![1, 2])]) {
            Ok(outcomes) => assert!(outcomes[0].is_ok(), "admitted query {i} answered"),
            Err(NetError::Proto(ProtoError::Remote(ErrorCode::TenantOverloaded))) => {
                shed = true;
                break;
            }
            other => panic!("unexpected outcome for query {i}: {other:?}"),
        }
    }
    assert!(shed, "tenant-a never hit its quota");
    // The shed is per-tenant: tenant-b has its own untouched bucket.
    let mut client_b = NetClient::connect(addr).unwrap().with_collection("tenant-b");
    let outcomes = client_b
        .query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![1, 2])])
        .unwrap();
    assert!(outcomes[0].is_ok(), "tenant-b served while tenant-a is shed");
    // And it is not sticky: the refused tenant's connection still pings.
    client_a.ping().unwrap();

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Guards the "collection file is a real SetCollection" assumption the
/// solo-server reference relies on (index serving would need it; the
/// cardinality task never touches it, so corruption would otherwise pass).
#[test]
fn written_fixture_collections_load_back() {
    let root = tmproot("fixture");
    write_collection(&root, "tenant-a", 15);
    let sets: SetCollection =
        setlearn::persist::load_json(&root.join("tenant-a").join(COLLECTION_SETS)).unwrap();
    assert!(!sets.is_empty());
    let _ = std::fs::remove_dir_all(&root);
}
