//! Loopback tests for the TCP front-end: correctness over the wire, typed
//! shedding, malformed-frame refusal, graceful drain, and the remote
//! shutdown gate — all against fast mock structures so the suite stays
//! quick (the real-model end-to-end lives in the workspace-level
//! `net_e2e.rs`).

use setlearn::tasks::{LearnedSetStructure, QueryOutcome};
use setlearn::wire::{QueryRequest, QueryValue, WireTask};
use setlearn_serve::net::{NetClient, NetConfig, NetError, NetServer, WireBackend};
use setlearn_serve::proto::{
    decode_response_batch, encode_frame, encode_request_batch, read_frame, ErrorCode, ProtoError,
    HEADER_LEN, VERSION_V2,
};
use setlearn_serve::{ServeConfig, ServeError, ServeRuntime, ShardedRuntime, StructureTask};
use setlearn_data::ElementSet;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic mock "cardinality" structure: 1.5 × |query|, plus a
/// degradation flag on queries containing the element 666 so the wire's
/// flag plumbing is exercised too.
#[derive(Clone)]
struct MockCard;

impl LearnedSetStructure for MockCard {
    type Output = f64;
    const NAME: &'static str = "cardinality";

    fn query(&self, q: &[u32]) -> QueryOutcome<f64> {
        if q.contains(&666) {
            QueryOutcome {
                value: 0.0,
                fallback: Some(setlearn::hybrid::FallbackReason::NonFinite),
                bound_miss: false,
            }
        } else {
            QueryOutcome::clean(q.len() as f64 * 1.5)
        }
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<f64>> {
        queries.iter().map(|q| self.query(q)).collect()
    }

    fn query_batch_parallel(&self, queries: &[ElementSet], _threads: usize) -> Vec<QueryOutcome<f64>> {
        self.query_batch(queries)
    }
}

/// Sleeps per batch so a tiny queue sheds deterministically.
#[derive(Clone)]
struct SlowCard;

impl LearnedSetStructure for SlowCard {
    type Output = f64;
    const NAME: &'static str = "cardinality";

    fn query(&self, q: &[u32]) -> QueryOutcome<f64> {
        std::thread::sleep(Duration::from_millis(20));
        QueryOutcome::clean(q.len() as f64)
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<f64>> {
        queries.iter().map(|q| self.query(q)).collect()
    }

    fn query_batch_parallel(&self, queries: &[ElementSet], _threads: usize) -> Vec<QueryOutcome<f64>> {
        self.query_batch(queries)
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_batch: 16,
        max_delay: Duration::from_micros(100),
        queue_capacity: 256,
    }
}

fn start_server(
    config: NetConfig,
) -> (NetServer, Arc<ServeRuntime<StructureTask<MockCard>>>, std::net::SocketAddr) {
    let runtime = Arc::new(ServeRuntime::start(StructureTask::new(MockCard), serve_config()));
    let backend: Arc<dyn WireBackend> = Arc::clone(&runtime) as _;
    let server = NetServer::bind("127.0.0.1:0", backend, config).unwrap();
    let addr = server.local_addr();
    (server, runtime, addr)
}

#[test]
fn loopback_answers_equal_in_process_query_batch() {
    let (server, runtime, addr) = start_server(NetConfig::default());
    let raw: Vec<Vec<u32>> = vec![
        vec![3, 1, 2],
        vec![],
        vec![5, 5, 5, 5],
        vec![666, 1],
        (0..100).rev().collect(),
    ];
    let requests: Vec<QueryRequest> = raw.iter().map(|v| QueryRequest::new(v.clone())).collect();
    let canonical: Vec<ElementSet> =
        requests.iter().cloned().map(|r| r.canonicalize()).collect();
    let expected = MockCard.query_batch(&canonical);

    let mut client = NetClient::connect(addr).unwrap();
    client.ping().unwrap();
    let outcomes = client.query_batch(WireTask::Cardinality, &requests).unwrap();
    assert_eq!(outcomes.len(), expected.len());
    for (got, want) in outcomes.into_iter().zip(expected) {
        let got = got.expect("no query should fail");
        match got.value {
            QueryValue::Cardinality(v) => assert_eq!(v.to_bits(), want.value.to_bits()),
            other => panic!("wrong value kind: {other:?}"),
        }
        assert_eq!(got.fallback, want.fallback);
        assert_eq!(got.bound_miss, want.bound_miss);
    }
    server.shutdown();
    Arc::try_unwrap(runtime).ok().expect("server released its backend handle").shutdown();
}

#[test]
fn several_frames_pipeline_over_one_connection() {
    let (server, runtime, addr) = start_server(NetConfig::default());
    let mut client = NetClient::connect(addr).unwrap();
    for round in 1..20usize {
        let requests: Vec<QueryRequest> =
            (0..round).map(|i| QueryRequest::new((0..i as u32).collect())).collect();
        let outcomes = client.query_batch(WireTask::Cardinality, &requests).unwrap();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome.unwrap().value {
                QueryValue::Cardinality(v) => assert_eq!(v, i as f64 * 1.5),
                other => panic!("wrong value kind: {other:?}"),
            }
        }
    }
    drop(client);
    server.shutdown();
    drop(runtime);
}

#[test]
fn task_mismatch_is_typed_and_the_connection_survives() {
    let (server, runtime, addr) = start_server(NetConfig::default());
    let mut client = NetClient::connect(addr).unwrap();
    match client.query_batch(WireTask::Bloom, &[QueryRequest::new(vec![1])]) {
        Err(NetError::Proto(ProtoError::Remote(ErrorCode::TaskMismatch))) => {}
        other => panic!("expected typed task mismatch, got {other:?}"),
    }
    // Addressing mistakes do not poison the stream.
    client.ping().unwrap();
    let outcomes =
        client.query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![1, 2])]).unwrap();
    assert!(outcomes[0].is_ok());
    server.shutdown();
    drop(runtime);
}

#[test]
fn overload_shed_round_trips_as_typed_per_query_errors() {
    let runtime = Arc::new(ServeRuntime::start(
        StructureTask::new(SlowCard),
        ServeConfig { threads: 1, max_batch: 1, queue_capacity: 1, ..serve_config() },
    ));
    let backend: Arc<dyn WireBackend> = Arc::clone(&runtime) as _;
    let server = NetServer::bind("127.0.0.1:0", backend, NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // One frame of 6 queries against a capacity-1 queue: admission is a
    // single atomic bulk push, so exactly one query is admitted and the
    // rest shed — and the shed must arrive as ErrorCode::Serve(Overloaded),
    // not a stringified failure.
    let requests: Vec<QueryRequest> =
        (0..6).map(|i| QueryRequest::new(vec![i as u32])).collect();
    let outcomes = client.query_batch(WireTask::Cardinality, &requests).unwrap();
    let ok = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, Err(ErrorCode::Serve(ServeError::Overloaded))))
        .count();
    assert_eq!(ok, 1, "capacity-1 queue admits exactly one");
    assert_eq!(shed, 5, "the rest shed typed");
    server.shutdown();
    drop(runtime);
}

#[test]
fn malformed_frames_get_typed_refusals() {
    let config = NetConfig { max_frame_bytes: 1 << 12, ..NetConfig::default() };

    // Bad CRC.
    {
        let (server, runtime, addr) = start_server(config.clone());
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut frame = encode_frame(0, 5, &encode_request_batch(&[QueryRequest::new(vec![1])]));
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        raw.write_all(&frame).unwrap();
        let resp = read_frame(&mut raw, 1 << 12).unwrap();
        match decode_response_batch(&resp.payload) {
            Err(ProtoError::Remote(ErrorCode::BadFrame)) => {}
            other => panic!("bad CRC not refused typed: {other:?}"),
        }
        server.shutdown();
        drop(runtime);
    }

    // Unsupported version (one past the newest the server speaks).
    {
        let (server, runtime, addr) = start_server(config.clone());
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut frame = encode_frame(0, 6, &encode_request_batch(&[QueryRequest::new(vec![1])]));
        frame[4] = VERSION_V2 + 1;
        raw.write_all(&frame).unwrap();
        let resp = read_frame(&mut raw, 1 << 12).unwrap();
        match decode_response_batch(&resp.payload) {
            Err(ProtoError::Remote(ErrorCode::UnsupportedVersion)) => {}
            other => panic!("future version not refused typed: {other:?}"),
        }
        server.shutdown();
        drop(runtime);
    }

    // Declared payload length past the server's cap: refused before the
    // payload is read (the client never sends one).
    {
        let (server, runtime, addr) = start_server(config.clone());
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut header = encode_frame(0, 7, &[]);
        header[14..18].copy_from_slice(&(1u32 << 20).to_le_bytes());
        raw.write_all(&header[..HEADER_LEN]).unwrap();
        let resp = read_frame(&mut raw, 1 << 12).unwrap();
        match decode_response_batch(&resp.payload) {
            Err(ProtoError::Remote(ErrorCode::FrameTooLarge)) => {}
            other => panic!("oversized frame not refused typed: {other:?}"),
        }
        server.shutdown();
        drop(runtime);
    }

    // Garbage payload inside a well-formed frame.
    {
        let (server, runtime, addr) = start_server(config);
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let frame = encode_frame(0, 8, &[0xFF; 13]);
        raw.write_all(&frame).unwrap();
        let resp = read_frame(&mut raw, 1 << 12).unwrap();
        match decode_response_batch(&resp.payload) {
            Err(ProtoError::Remote(ErrorCode::BadFrame)) => {}
            other => panic!("garbage payload not refused typed: {other:?}"),
        }
        server.shutdown();
        drop(runtime);
    }
}

#[test]
fn graceful_drain_closes_the_listener() {
    let (server, runtime, addr) = start_server(NetConfig::default());
    let mut client = NetClient::connect(addr).unwrap();
    let outcomes =
        client.query_batch(WireTask::Cardinality, &[QueryRequest::new(vec![1, 2, 3])]).unwrap();
    assert!(outcomes[0].is_ok());
    server.shutdown();
    // After the drain returns the listener is gone: new connections are
    // refused (or a fresh client fails on first use).
    match NetClient::connect(addr) {
        Err(_) => {}
        Ok(mut late) => assert!(late.ping().is_err(), "post-drain connection served a ping"),
    }
    // The backend was untouched by the net drain: in-process serving works.
    let outcome = runtime.call(vec![1u32, 2].into_boxed_slice()).unwrap();
    assert_eq!(outcome.value, 3.0);
    drop(runtime);
}

#[test]
fn remote_shutdown_is_gated_and_drains_when_allowed() {
    // Gate closed: the frame is refused typed and nothing drains.
    let (server, runtime, addr) = start_server(NetConfig::default());
    let mut client = NetClient::connect(addr).unwrap();
    match client.shutdown_server() {
        Err(NetError::Proto(ProtoError::Remote(ErrorCode::ShutdownNotAllowed))) => {}
        other => panic!("expected shutdown refusal, got {other:?}"),
    }
    assert!(!server.is_shutting_down());
    server.shutdown();
    drop(runtime);

    // Gate open: the frame is acked, then the server drains.
    let (server, runtime, addr) =
        start_server(NetConfig { allow_remote_shutdown: true, ..NetConfig::default() });
    let mut client = NetClient::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    // The flag is raised by the handler right after the ack.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !server.is_shutting_down() {
        assert!(std::time::Instant::now() < deadline, "shutdown flag never raised");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();
    drop(runtime);
}

#[test]
fn sharded_runtime_serves_over_the_wire() {
    // Two mock shards, summed: a remote query answers 2 × (1.5 × |q|).
    let runtime = Arc::new(ShardedRuntime::start(
        vec![StructureTask::new(MockCard), StructureTask::new(MockCard)],
        serve_config(),
        |parts: Vec<QueryOutcome<f64>>| {
            let mut total = QueryOutcome::clean(0.0);
            for part in parts {
                total.value += part.value;
                total.fallback = total.fallback.or(part.fallback);
                total.bound_miss |= part.bound_miss;
            }
            total
        },
    ));
    let backend: Arc<dyn WireBackend> = Arc::clone(&runtime) as _;
    let server = NetServer::bind("127.0.0.1:0", backend, NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let response =
        client.query(WireTask::Cardinality, QueryRequest::new(vec![10, 20, 30, 40])).unwrap();
    match response.value {
        QueryValue::Cardinality(v) => assert_eq!(v, 2.0 * 1.5 * 4.0),
        other => panic!("wrong value kind: {other:?}"),
    }
    server.shutdown();
    drop(runtime);
}
