//! Exporters: Prometheus text-exposition format and a human-readable table.

use crate::metrics::{HistogramSnapshot, MetricKey, RegistrySnapshot};

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Render integral values without an exponent so the output is stable
        // and diff-friendly (e.g. `5` rather than `5.0`).
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_bound(b: f64) -> String {
    fmt_f64(b)
}

/// Renders a snapshot as a JSON document (the same shape the CLI's
/// `--telemetry` writes to `<base>.metrics.json`), for machine consumers
/// that prefer structured data over the Prometheus exposition — e.g. the
/// wire `KIND_STATS` reply in JSON format and the CLI's `watch` mode.
pub fn to_json(snap: &RegistrySnapshot) -> String {
    serde_json::to_string(snap).expect("RegistrySnapshot serializes")
}

/// Parses a JSON document produced by [`to_json`].
pub fn from_json(text: &str) -> Result<RegistrySnapshot, String> {
    serde_json::from_str(text).map_err(|e| format!("bad metrics JSON: {e}"))
}

/// Renders a snapshot in Prometheus text-exposition format (version 0.0.4):
/// one `# TYPE` line per family, `_bucket{le=...}`/`_sum`/`_count` series for
/// histograms. Output is deterministic — families and series are sorted.
pub fn to_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut typed: Vec<(String, String)> = Vec::new(); // (family, body) for sorting

    // Counters and gauges grouped by family name for `# TYPE` headers.
    for (kind, keys_values) in [
        (
            "counter",
            snap.counters
                .iter()
                .map(|c| (c.key.clone(), c.value as f64))
                .collect::<Vec<_>>(),
        ),
        (
            "gauge",
            snap.gauges.iter().map(|g| (g.key.clone(), g.value)).collect::<Vec<_>>(),
        ),
    ] {
        let mut i = 0;
        while i < keys_values.len() {
            let family = keys_values[i].0.name.clone();
            let mut body = format!("# TYPE {family} {kind}\n");
            while i < keys_values.len() && keys_values[i].0.name == family {
                let (key, value) = &keys_values[i];
                body.push_str(&format!("{} {}\n", key.render(), fmt_f64(*value)));
                i += 1;
            }
            typed.push((family, body));
        }
    }

    for h in &snap.histograms {
        let family = h.key.name.clone();
        let mut body = format!("# TYPE {family} histogram\n");
        body.push_str(&histogram_series(&h.key, &h.value));
        typed.push((family, body));
    }

    typed.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, body) in typed {
        out.push_str(&body);
    }
    out
}

fn histogram_series(key: &MetricKey, snap: &HistogramSnapshot) -> String {
    let mut out = String::new();
    let bucket_key = MetricKey { name: format!("{}_bucket", key.name), labels: key.labels.clone() };
    let mut cumulative = 0u64;
    for (i, &c) in snap.counts.iter().enumerate() {
        cumulative += c;
        let le = if i < snap.bounds.len() {
            fmt_bound(snap.bounds[i])
        } else {
            "+Inf".to_string()
        };
        out.push_str(&format!(
            "{} {}\n",
            bucket_key.render_with_extra(Some(("le", &le))),
            cumulative
        ));
    }
    let sum_key = MetricKey { name: format!("{}_sum", key.name), labels: key.labels.clone() };
    let count_key = MetricKey { name: format!("{}_count", key.name), labels: key.labels.clone() };
    out.push_str(&format!("{} {}\n", sum_key.render(), fmt_f64(snap.sum)));
    out.push_str(&format!("{} {}\n", count_key.render(), snap.count));
    out
}

/// Renders a snapshot as fixed-width human-readable tables: one section for
/// counters, one for gauges, one row per histogram with p50/p95/p99/max/mean.
pub fn to_table(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters\n");
        let width = snap.counters.iter().map(|c| c.key.render().len()).max().unwrap_or(0);
        for c in &snap.counters {
            out.push_str(&format!("  {:<width$}  {}\n", c.key.render(), c.value));
        }
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges\n");
        let width = snap.gauges.iter().map(|g| g.key.render().len()).max().unwrap_or(0);
        for g in &snap.gauges {
            out.push_str(&format!("  {:<width$}  {}\n", g.key.render(), fmt_f64(g.value)));
        }
        out.push('\n');
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms (p50 / p95 / p99 / max / mean / count)\n");
        let width = snap.histograms.iter().map(|h| h.key.render().len()).max().unwrap_or(0);
        for h in &snap.histograms {
            let s = &h.value;
            out.push_str(&format!(
                "  {:<width$}  {} / {} / {} / {} / {} / {}\n",
                h.key.render(),
                fmt_f64(s.quantile(0.50)),
                fmt_f64(s.quantile(0.95)),
                fmt_f64(s.quantile(0.99)),
                fmt_f64(s.max),
                fmt_f64(s.mean()),
                s.count,
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

/// Minimal sanity check that a string parses as Prometheus text exposition:
/// every non-comment line is `name_or_series value` and every series has a
/// preceding `# TYPE` header for its family. Returns the number of sample
/// lines. Used by `cli stats` and the CI smoke test.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut families: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts
                .next()
                .ok_or_else(|| format!("line {}: empty TYPE header", i + 1))?;
            match parts.next() {
                Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                other => {
                    return Err(format!("line {}: bad metric type {:?}", i + 1, other));
                }
            }
            families.push(family.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or other comment
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: expected 'series value'", i + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: unparseable sample value {value:?}", i + 1))?;
        let name = series.split('{').next().unwrap_or(series);
        let known = families.iter().any(|f| {
            name == f
                || name == format!("{f}_bucket")
                || name == format!("{f}_sum")
                || name == format!("{f}_count")
        });
        if !known {
            return Err(format!("line {}: series {name:?} has no # TYPE header", i + 1));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples found".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter_with("setlearn_serve_queries_total", &[("task", "cardinality")]).add(5);
        reg.counter_with(
            "setlearn_serve_fallbacks_total",
            &[("task", "cardinality"), ("reason", "non_finite")],
        )
        .add(2);
        reg.gauge("setlearn_train_loss").set(0.25);
        let h = reg.histogram_with(
            "setlearn_serve_latency_seconds",
            &[("task", "cardinality")],
            &[0.001, 0.01],
        );
        h.observe(0.0005);
        h.observe(0.0005);
        h.observe(0.02);
        reg
    }

    #[test]
    fn golden_prometheus_exposition() {
        let text = to_prometheus(&sample_registry().snapshot());
        let expected = "\
# TYPE setlearn_serve_fallbacks_total counter
setlearn_serve_fallbacks_total{reason=\"non_finite\",task=\"cardinality\"} 2
# TYPE setlearn_serve_latency_seconds histogram
setlearn_serve_latency_seconds_bucket{task=\"cardinality\",le=\"0.001\"} 2
setlearn_serve_latency_seconds_bucket{task=\"cardinality\",le=\"0.01\"} 2
setlearn_serve_latency_seconds_bucket{task=\"cardinality\",le=\"+Inf\"} 3
setlearn_serve_latency_seconds_sum{task=\"cardinality\"} 0.021
setlearn_serve_latency_seconds_count{task=\"cardinality\"} 3
# TYPE setlearn_serve_queries_total counter
setlearn_serve_queries_total{task=\"cardinality\"} 5
# TYPE setlearn_train_loss gauge
setlearn_train_loss 0.25
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_validates() {
        let text = to_prometheus(&sample_registry().snapshot());
        let samples = validate_prometheus(&text).expect("valid exposition");
        assert_eq!(samples, 8);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("orphan_series 1\n").is_err());
        assert!(validate_prometheus("# TYPE a counter\na notanumber\n").is_err());
        assert!(validate_prometheus("# TYPE a flavor\na 1\n").is_err());
    }

    #[test]
    fn table_lists_quantiles() {
        let text = to_table(&sample_registry().snapshot());
        assert!(text.contains("counters"));
        let queries_row = text
            .lines()
            .find(|l| l.contains("setlearn_serve_queries_total"))
            .expect("queries row");
        assert!(queries_row.trim_end().ends_with(" 5"), "got: {queries_row}");
        assert!(text.contains("histograms"));
        assert!(text.contains("setlearn_serve_latency_seconds"));
        assert!(to_table(&RegistrySnapshot::default()).contains("no metrics recorded"));
    }
}
