//! Structured tracing: spans and events with monotonic timestamps, collected
//! into a bounded ring buffer and exportable as JSONL.
//!
//! Every record carries `ts_us` — microseconds since the collector's epoch
//! (an `Instant` captured at construction), so timestamps are monotonic and
//! immune to wall-clock jumps. Records are serialized one JSON object per
//! line; the schema is documented on [`TraceRecord`].

use crate::metrics::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One key/value attached to a trace record. Exactly one of `num`/`text` is
/// set (a struct instead of an enum keeps the JSONL schema flat and easy to
/// grep).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub key: String,
    /// Numeric payload, if the field is numeric.
    #[serde(default)]
    pub num: Option<f64>,
    /// Text payload, if the field is textual.
    #[serde(default)]
    pub text: Option<String>,
}

impl Field {
    /// Numeric field.
    pub fn num(key: &str, v: f64) -> Self {
        Field { key: key.to_string(), num: Some(v), text: None }
    }

    /// Text field.
    pub fn text(key: &str, v: &str) -> Self {
        Field { key: key.to_string(), num: None, text: Some(v.to_string()) }
    }
}

/// Record kind discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A timed region with a duration (`dur_us` is set).
    Span,
    /// A point-in-time occurrence (`dur_us` is `None`).
    Event,
}

// Hand-written impls: the trace schema uses lowercase kind strings
// ("span"/"event") and the vendored serde derive has no `rename_all`.
impl Serialize for RecordKind {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(
            match self {
                RecordKind::Span => "span",
                RecordKind::Event => "event",
            }
            .to_string(),
        )
    }
}

impl Deserialize for RecordKind {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        match v.as_str() {
            Some("span") => Ok(RecordKind::Span),
            Some("event") => Ok(RecordKind::Event),
            Some(other) => Err(serde::Error::custom(format!(
                "unknown record kind `{other}` (expected `span` or `event`)"
            ))),
            None => Err(serde::Error::type_mismatch("string", v)),
        }
    }
}

/// One line of the JSONL trace.
///
/// Schema (stable, documented in DESIGN.md):
/// `{"kind":"span"|"event","name":...,"ts_us":...,"dur_us":...?,"fields":[{"key":...,"num":...?,"text":...?},...]}`
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Span or event.
    pub kind: RecordKind,
    /// Record name (e.g. `train_epoch`, `serve_query`, `serve_fallback`).
    pub name: String,
    /// Microseconds since the collector epoch (monotonic).
    pub ts_us: u64,
    /// Span duration in microseconds; `None` for events.
    #[serde(default)]
    pub dur_us: Option<u64>,
    /// Structured payload.
    #[serde(default)]
    pub fields: Vec<Field>,
}

/// Bounded ring-buffer collector for [`TraceRecord`]s.
///
/// Pushing is a short mutex-protected `VecDeque` operation; when the buffer
/// is full the oldest record is evicted and a drop counter incremented, so a
/// long-running server never grows without bound.
#[derive(Debug)]
pub struct TraceCollector {
    epoch: Instant,
    capacity: usize,
    records: Mutex<VecDeque<TraceRecord>>,
    dropped: AtomicU64,
}

impl TraceCollector {
    /// Creates a collector holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceCollector {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            records: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since the collector epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, rec: TraceRecord) {
        let mut records = self.records.lock().unwrap_or_else(|e| e.into_inner());
        if records.len() >= self.capacity {
            records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        records.push_back(rec);
    }

    /// Records an instantaneous event.
    pub fn push_event(&self, name: &str, fields: Vec<Field>) {
        let ts_us = self.now_us();
        self.push(TraceRecord {
            kind: RecordKind::Event,
            name: name.to_string(),
            ts_us,
            dur_us: None,
            fields,
        });
    }

    /// Records a completed span given its start timestamp (from
    /// [`TraceCollector::now_us`]).
    pub fn push_span(&self, name: &str, start_us: u64, fields: Vec<Field>) {
        let end = self.now_us();
        self.push(TraceRecord {
            kind: RecordKind::Span,
            name: name.to_string(),
            ts_us: start_us,
            dur_us: Some(end.saturating_sub(start_us)),
            fields,
        });
    }

    /// Starts a span; finish it with [`SpanGuard::finish`] (or let it drop to
    /// record with no extra fields).
    pub fn span<'a>(&'a self, name: &'a str) -> SpanGuard<'a> {
        SpanGuard { collector: self, name, start_us: self.now_us(), fields: Vec::new(), done: false }
    }

    /// Number of records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the buffered records in arrival order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns all buffered records (used when flushing to a
    /// JSONL sink so the same records are not written twice).
    pub fn drain(&self) -> Vec<TraceRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect()
    }
}

impl Default for TraceCollector {
    /// 8192-record collector, the capacity used by the global tracer.
    fn default() -> Self {
        TraceCollector::new(8192)
    }
}

/// RAII handle for an in-flight span. Accumulate fields with
/// [`SpanGuard::field_num`]/[`SpanGuard::field_text`]; the span is recorded
/// on [`SpanGuard::finish`] or on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    collector: &'a TraceCollector,
    name: &'a str,
    start_us: u64,
    fields: Vec<Field>,
    done: bool,
}

impl SpanGuard<'_> {
    /// Attaches a numeric field.
    pub fn field_num(&mut self, key: &str, v: f64) -> &mut Self {
        self.fields.push(Field::num(key, v));
        self
    }

    /// Attaches a text field.
    pub fn field_text(&mut self, key: &str, v: &str) -> &mut Self {
        self.fields.push(Field::text(key, v));
        self
    }

    /// Records the span now instead of at drop.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if !self.done {
            self.done = true;
            self.collector
                .push_span(self.name, self.start_us, std::mem::take(&mut self.fields));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

/// Serializes records as JSONL — one JSON object per line, trailing newline.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        match serde_json::to_string(rec) {
            Ok(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Err(_) => {
                // A record that fails to serialize is dropped rather than
                // corrupting the sink; serde on these plain structs cannot
                // realistically fail.
            }
        }
    }
    out
}

/// Parses a JSONL trace back into records. Blank lines are skipped; a
/// malformed line yields an error naming its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(line)
            .map_err(|e| format!("trace line {}: {}", i + 1, e))?;
        records.push(rec);
    }
    Ok(records)
}

/// Publishes collector health (buffered/dropped record counts) as gauges so
/// trace loss is itself observable.
pub fn publish_collector_metrics(collector: &TraceCollector, registry: &MetricsRegistry) {
    registry.gauge("setlearn_trace_buffered_records").set(collector.len() as f64);
    registry
        .gauge("setlearn_trace_dropped_records")
        .set(collector.dropped() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_spans_are_ordered_and_timed() {
        let tc = TraceCollector::new(16);
        tc.push_event("boot", vec![Field::text("mode", "test")]);
        {
            let mut span = tc.span("work");
            span.field_num("items", 3.0);
        } // drop records the span
        let recs = tc.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, RecordKind::Event);
        assert_eq!(recs[0].name, "boot");
        assert!(recs[0].dur_us.is_none());
        assert_eq!(recs[1].kind, RecordKind::Span);
        assert!(recs[1].dur_us.is_some());
        assert!(recs[1].ts_us >= recs[0].ts_us);
        assert_eq!(recs[1].fields[0].key, "items");
        assert_eq!(recs[1].fields[0].num, Some(3.0));
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let tc = TraceCollector::new(3);
        for i in 0..5 {
            tc.push_event(&format!("e{i}"), Vec::new());
        }
        assert_eq!(tc.len(), 3);
        assert_eq!(tc.dropped(), 2);
        let names: Vec<_> = tc.records().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn jsonl_roundtrip() {
        let tc = TraceCollector::new(8);
        tc.push_event("fallback", vec![Field::text("reason", "non_finite"), Field::num("q", 2.0)]);
        tc.span("serve_query").finish();
        let text = to_jsonl(&tc.records());
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).expect("parse");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "fallback");
        assert_eq!(back[0].fields[0].text.as_deref(), Some("non_finite"));
        assert_eq!(back[1].kind, RecordKind::Span);
    }

    #[test]
    fn parse_rejects_malformed_lines_with_position() {
        let err = parse_jsonl("{\"kind\":\"event\",\"name\":\"a\",\"ts_us\":1,\"fields\":[]}\nnot json\n")
            .unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn drain_empties_the_buffer() {
        let tc = TraceCollector::new(4);
        tc.push_event("a", Vec::new());
        tc.push_event("b", Vec::new());
        let drained = tc.drain();
        assert_eq!(drained.len(), 2);
        assert!(tc.is_empty());
    }

    #[test]
    fn collector_metrics_publish() {
        let tc = TraceCollector::new(1);
        tc.push_event("a", Vec::new());
        tc.push_event("b", Vec::new()); // evicts "a"
        let reg = MetricsRegistry::new();
        publish_collector_metrics(&tc, &reg);
        let snap = reg.snapshot();
        let buffered = snap.gauges.iter().find(|g| g.key.name == "setlearn_trace_buffered_records").unwrap();
        let dropped = snap.gauges.iter().find(|g| g.key.name == "setlearn_trace_dropped_records").unwrap();
        assert_eq!(buffered.value, 1.0);
        assert_eq!(dropped.value, 1.0);
    }
}
