//! Observability layer for the setlearn workspace.
//!
//! Three pieces, all dependency-free (vendored serde/serde_json only):
//!
//! - [`metrics`] — a lock-cheap [`MetricsRegistry`](metrics::MetricsRegistry)
//!   of named counters, gauges, and fixed-bucket histograms. Recording is
//!   atomic; snapshots serialize to JSON for run artifacts.
//! - [`trace`] — structured spans/events with monotonic timestamps, buffered
//!   in a bounded ring and exportable as JSONL.
//! - [`export`] — Prometheus text exposition and a human-readable table.
//!
//! Instrumented crates talk to the process-wide singletons via [`metrics()`]
//! and [`tracer()`]; how much they record is governed by the global
//! [`TelemetryLevel`]:
//!
//! - `Off` — nothing is recorded.
//! - `Metrics` (default) — counters/gauges/histograms and *rare* events
//!   (fallbacks, recoveries). Hot-path cost is a few relaxed atomics.
//! - `Full` — additionally records per-query/per-epoch spans into the trace
//!   ring. Enabled by the CLI when `--telemetry <path>` is passed.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use export::{from_json, to_json, to_prometheus, to_table, validate_prometheus};
pub use metrics::{
    Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, HistogramSnapshot,
    Label, MetricKey, MetricsRegistry, RegistrySnapshot, LATENCY_BOUNDS,
    MAX_SERIES_PER_FAMILY, QERROR_BOUNDS,
};
pub use slowlog::{
    parse_slow_jsonl, SlowQueryLog, SlowQueryRecord, Stage, StageBreakdown,
    DEFAULT_SLOW_LOG_CAPACITY, STAGES, STAGE_COUNT,
};
pub use trace::{
    parse_jsonl, publish_collector_metrics, to_jsonl, Field, RecordKind, SpanGuard,
    TraceCollector, TraceRecord,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// How much the instrumented code records into the global telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TelemetryLevel {
    /// Record nothing.
    Off = 0,
    /// Record metrics and rare events (default).
    Metrics = 1,
    /// Additionally record per-query / per-epoch spans.
    Full = 2,
}

impl TelemetryLevel {
    fn from_u8(v: u8) -> TelemetryLevel {
        match v {
            0 => TelemetryLevel::Off,
            2 => TelemetryLevel::Full,
            _ => TelemetryLevel::Metrics,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(TelemetryLevel::Metrics as u8);

/// Sets the global telemetry level.
pub fn set_level(level: TelemetryLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current global telemetry level.
pub fn level() -> TelemetryLevel {
    TelemetryLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// True when metrics (and rare events) should be recorded.
pub fn metrics_on() -> bool {
    level() >= TelemetryLevel::Metrics
}

/// True when per-query/per-epoch spans should be recorded.
pub fn tracing_on() -> bool {
    level() >= TelemetryLevel::Full
}

/// Process-wide metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Process-wide trace collector (8192-record ring).
pub fn tracer() -> &'static TraceCollector {
    static TRACER: OnceLock<TraceCollector> = OnceLock::new();
    TRACER.get_or_init(TraceCollector::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_gates() {
        // Note: the level is process-global; this test restores the default.
        set_level(TelemetryLevel::Off);
        assert!(!metrics_on());
        assert!(!tracing_on());
        set_level(TelemetryLevel::Full);
        assert!(metrics_on());
        assert!(tracing_on());
        set_level(TelemetryLevel::Metrics);
        assert!(metrics_on());
        assert!(!tracing_on());
    }

    #[test]
    fn globals_are_singletons() {
        let a = metrics() as *const _;
        let b = metrics() as *const _;
        assert_eq!(a, b);
        let t1 = tracer() as *const _;
        let t2 = tracer() as *const _;
        assert_eq!(t1, t2);
    }
}
