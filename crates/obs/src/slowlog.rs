//! Slow-query log: a bounded ring of structured records for requests whose
//! total latency crossed a configurable threshold, plus the per-stage
//! taxonomy those records (and the stage-labelled histograms) share.
//!
//! The serving front-end owns one [`SlowQueryLog`] per server; records are
//! retrievable over the wire (the `SLP1` stats frame) and dumpable by the
//! CLI as JSONL. Recording is a threshold compare plus, for the slow
//! minority, one short mutex-guarded ring push — fast-path requests pay a
//! single `u64` load.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The stages a served request passes through, in order. Stage labels name
/// the series of the `setlearn_request_stage_seconds` histogram family and
/// the fields of a [`StageBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Wire bytes → decoded, canonicalized query batch.
    Decode = 0,
    /// Admission into the bounded queue (lock + shed decision).
    Admission = 1,
    /// Enqueued → picked up by a worker.
    QueueWait = 2,
    /// Batch head grabbed → batch fully assembled (micro-batch window).
    BatchWait = 3,
    /// `serve_batch` execution.
    Inference = 4,
    /// Sharded fan-out answer aggregation (zero for unsharded runtimes).
    Aggregate = 5,
    /// Response encode + write to the wire.
    Encode = 6,
}

/// Number of stages in [`Stage`].
pub const STAGE_COUNT: usize = 7;

/// All stages, in pipeline order.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::Decode,
    Stage::Admission,
    Stage::QueueWait,
    Stage::BatchWait,
    Stage::Inference,
    Stage::Aggregate,
    Stage::Encode,
];

impl Stage {
    /// Stable label used in metrics, spans, and slow-query records.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue",
            Stage::BatchWait => "batch_wait",
            Stage::Inference => "inference",
            Stage::Aggregate => "aggregate",
            Stage::Encode => "encode",
        }
    }
}

/// Microseconds spent in each [`Stage`], as measured for one request.
///
/// Stages overlap with wall clock (a request waits in the queue while its
/// batch assembles), so the fields need not sum to the total latency; each
/// answers "where did the time go" for its own stage.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Frame bytes → decoded, canonicalized batch.
    pub decode_us: u64,
    /// Admission into the bounded queue.
    pub admission_us: u64,
    /// Enqueued → dequeued by a worker (slowest shard when fanned out).
    pub queue_us: u64,
    /// Batch head grabbed → batch assembled.
    pub batch_wait_us: u64,
    /// `serve_batch` execution (slowest shard when fanned out).
    pub inference_us: u64,
    /// Fan-out aggregation (zero when unsharded).
    pub aggregate_us: u64,
    /// Response encode + wire write.
    pub encode_us: u64,
}

impl StageBreakdown {
    /// Value for one stage.
    pub fn get(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Decode => self.decode_us,
            Stage::Admission => self.admission_us,
            Stage::QueueWait => self.queue_us,
            Stage::BatchWait => self.batch_wait_us,
            Stage::Inference => self.inference_us,
            Stage::Aggregate => self.aggregate_us,
            Stage::Encode => self.encode_us,
        }
    }

    /// Sets one stage's value.
    pub fn set(&mut self, stage: Stage, us: u64) {
        match stage {
            Stage::Decode => self.decode_us = us,
            Stage::Admission => self.admission_us = us,
            Stage::QueueWait => self.queue_us = us,
            Stage::BatchWait => self.batch_wait_us = us,
            Stage::Inference => self.inference_us = us,
            Stage::Aggregate => self.aggregate_us = us,
            Stage::Encode => self.encode_us = us,
        }
    }
}

/// One slow request, as retained in the ring and exported as a JSONL line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowQueryRecord {
    /// Request trace id (client-supplied or server-minted).
    pub trace_id: u64,
    /// Served task label (`cardinality` / `index` / `bloom`).
    pub task: String,
    /// Total receipt → response-encoded latency, microseconds.
    pub total_us: u64,
    /// Canonicalized query set size.
    pub set_size: u32,
    /// Shards the request fanned out to (1 when unsharded).
    pub shard_count: u32,
    /// The model answered via its guard fallback.
    pub fallback: bool,
    /// An index answer fell outside the learned bound (exact-path rescue).
    pub bound_miss: bool,
    /// Per-stage latency breakdown.
    pub stages: StageBreakdown,
}

/// Bounded ring of [`SlowQueryRecord`]s with a configurable latency
/// threshold. `u64::MAX` (the default) disables recording entirely.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_us: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowQueryRecord>>,
    dropped: AtomicU64,
}

/// Default ring capacity.
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 256;

impl Default for SlowQueryLog {
    fn default() -> Self {
        SlowQueryLog::new(DEFAULT_SLOW_LOG_CAPACITY)
    }
}

impl SlowQueryLog {
    /// Creates a disabled log (threshold `u64::MAX`) holding up to
    /// `capacity` records; the oldest record is evicted on overflow.
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            threshold_us: AtomicU64::new(u64::MAX),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Sets the slow threshold in microseconds. `u64::MAX` disables.
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Current threshold in microseconds (`u64::MAX` = disabled).
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Whether a request of `total_us` should be recorded. The fast-path
    /// check: one relaxed load and a compare.
    pub fn is_slow(&self, total_us: u64) -> bool {
        total_us >= self.threshold_us()
    }

    /// Pushes one record, evicting (and counting) the oldest on overflow.
    /// The threshold is *not* re-checked here: callers gate on
    /// [`SlowQueryLog::is_slow`] before building the record.
    pub fn record(&self, record: SlowQueryRecord) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Records evicted due to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Buffered record count.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the buffered records, oldest first. Non-destructive, so
    /// repeated scrapes see a sliding window rather than racing each other.
    pub fn records(&self) -> Vec<SlowQueryRecord> {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).iter().cloned().collect()
    }

    /// Serializes the buffered records as JSONL, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.records() {
            if let Ok(line) = serde_json::to_string(&record) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

/// Parses JSONL produced by [`SlowQueryLog::to_jsonl`]; malformed lines are
/// errors (the format is machine-written).
pub fn parse_slow_jsonl(text: &str) -> Result<Vec<SlowQueryRecord>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| format!("bad slow-query line: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trace_id: u64, total_us: u64) -> SlowQueryRecord {
        SlowQueryRecord {
            trace_id,
            task: "cardinality".to_string(),
            total_us,
            set_size: 3,
            shard_count: 1,
            fallback: false,
            bound_miss: false,
            stages: StageBreakdown { queue_us: total_us / 2, ..StageBreakdown::default() },
        }
    }

    #[test]
    fn disabled_by_default_and_threshold_gates() {
        let log = SlowQueryLog::new(4);
        assert!(!log.is_slow(u64::MAX - 1));
        log.set_threshold_us(1000);
        assert!(!log.is_slow(999));
        assert!(log.is_slow(1000));
        assert!(log.is_slow(5000));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let log = SlowQueryLog::new(2);
        log.record(record(1, 10));
        log.record(record(2, 20));
        log.record(record(3, 30));
        assert_eq!(log.dropped(), 1);
        let ids: Vec<u64> = log.records().iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn jsonl_roundtrip_preserves_records() {
        let log = SlowQueryLog::new(8);
        let mut r = record(42, 1500);
        r.fallback = true;
        r.stages.inference_us = 700;
        log.record(r.clone());
        let text = log.to_jsonl();
        assert!(text.contains("\"trace_id\":42"));
        let back = parse_slow_jsonl(&text).expect("parse");
        assert_eq!(back, vec![r]);
    }

    #[test]
    fn stage_labels_are_stable_and_complete() {
        let labels: Vec<&str> = STAGES.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["decode", "admission", "queue", "batch_wait", "inference", "aggregate", "encode"]
        );
        let mut b = StageBreakdown::default();
        for (i, s) in STAGES.iter().enumerate() {
            b.set(*s, i as u64 + 1);
        }
        for (i, s) in STAGES.iter().enumerate() {
            assert_eq!(b.get(*s), i as u64 + 1);
        }
    }
}
