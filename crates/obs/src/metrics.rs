//! Lock-cheap metrics: named counters, gauges and fixed-bucket histograms.
//!
//! The hot path is purely atomic — incrementing a [`Counter`] or observing a
//! [`Histogram`] sample touches a handful of `AtomicU64`s and never takes a
//! lock. The [`MetricsRegistry`] itself uses an `RwLock<HashMap>` only for
//! name → handle resolution; callers on hot paths resolve their handles once
//! (an `Arc`) and then record lock-free.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

// ---------------------------------------------------------------------------
// Atomic f64 helpers (CAS loops over the bit pattern)
// ---------------------------------------------------------------------------

fn atomic_f64_add(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

fn atomic_f64_max(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) >= v {
            return;
        }
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` — alias of [`Counter::add`] under the conventional
    /// Prometheus-client name.
    ///
    /// ```
    /// use setlearn_obs::Counter;
    ///
    /// let c = Counter::default();
    /// c.inc();
    /// c.inc_by(41);
    /// assert_eq!(c.get(), 42);
    /// ```
    pub fn inc_by(&self, n: u64) {
        self.add(n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding one `f64`.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds to the gauge (CAS loop; gauges are rarely hot).
    pub fn add(&self, v: f64) {
        atomic_f64_add(&self.bits, v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default latency buckets in seconds: 1 µs … 100 ms, roughly logarithmic.
pub const LATENCY_BOUNDS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 1e-1,
];

/// Default q-error buckets (q-errors are ≥ 1 by definition).
pub const QERROR_BOUNDS: &[f64] = &[1.0, 1.1, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0, 50.0, 1000.0];

/// Fixed-bucket histogram with an implicit `+Inf` overflow bucket, an exact
/// running sum/count, and an exact maximum. Observation is lock-free.
#[derive(Debug)]
pub struct Histogram {
    /// Strictly increasing upper bucket bounds (`le` semantics).
    bounds: Vec<f64>,
    /// One slot per bound plus the overflow bucket. The total sample count
    /// is the sum of the slots — not stored separately, to keep `observe`
    /// at the minimum number of atomic RMWs on the serve hot path.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty, non-finite, or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one sample. Non-finite samples are dropped (they carry no
    /// usable magnitude and would poison the sum).
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_max(&self.max_bits, v);
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total samples recorded (sums the buckets; cold-path only).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Consistent-enough point-in-time copy (each field is read atomically;
    /// concurrent writers may skew fields against each other by a sample).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = counts.iter().sum();
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max: if count == 0 { 0.0 } else { max },
        }
    }

    /// Merges a previously exported snapshot into this histogram (used to
    /// accumulate run artifacts across processes). Bucket layouts must match;
    /// mismatched snapshots are ignored.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.bounds != self.bounds || snap.counts.len() != self.buckets.len() {
            return;
        }
        for (slot, &c) in self.buckets.iter().zip(&snap.counts) {
            slot.fetch_add(c, Ordering::Relaxed);
        }
        atomic_f64_add(&self.sum_bits, snap.sum);
        if snap.count > 0 {
            atomic_f64_max(&self.max_bits, snap.max);
        }
    }

    /// Zeroes every bucket, the sum, and the maximum, returning the
    /// histogram to its freshly-constructed state. Not atomic with respect
    /// to concurrent observers: a sample racing the reset may land partially
    /// (count without sum or vice versa). Intended for poll-style consumers
    /// that own the histogram or tolerate a one-sample skew.
    pub fn reset(&self) {
        for slot in &self.buckets {
            slot.store(0, Ordering::Relaxed);
        }
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// Serializable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (the overflow bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Largest sample seen (`0.0` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean sample value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate by linear interpolation inside the owning bucket.
    /// The overflow bucket reports the exact maximum. `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target && c > 0 {
                if i >= self.bounds.len() {
                    return self.max;
                }
                let hi = self.bounds[i];
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = (target - (cum - c)) as f64 / c as f64;
                return (lo + (hi - lo) * frac).min(self.max);
            }
        }
        self.max
    }

    /// What happened since `baseline`: per-bucket counts, total count, and
    /// sum are subtracted (saturating, so a reset between snapshots degrades
    /// to an empty or partial delta instead of underflowing).
    /// `max` cannot be un-merged, so the delta keeps this snapshot's
    /// cumulative maximum. Bucket layouts must match; on mismatch the whole
    /// current snapshot is returned (the series was re-registered, so the
    /// baseline is meaningless).
    pub fn delta(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        if baseline.bounds != self.bounds || baseline.counts.len() != self.counts.len() {
            return self.clone();
        }
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&baseline.counts)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            count,
            sum: if count == 0 { 0.0 } else { (self.sum - baseline.sum).max(0.0) },
            max: if count == 0 { 0.0 } else { self.max },
        }
    }

    /// Adds `other` into this snapshot: counts and sums accumulate, `max`
    /// takes the larger. Bucket layouts must match; a mismatched `other` is
    /// ignored (same contract as [`Histogram::absorb`]).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.bounds != self.bounds || other.counts.len() != self.counts.len() {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.max = self.max.max(other.max);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One metric label (`key="value"` in the Prometheus exposition).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label {
    /// Label name.
    pub key: String,
    /// Label value.
    pub value: String,
}

/// Fully qualified metric identity: family name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricKey {
    /// Metric family name (e.g. `setlearn_serve_queries_total`).
    pub name: String,
    /// Labels, sorted by key.
    pub labels: Vec<Label>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<Label> = labels
            .iter()
            .map(|(k, v)| Label { key: (*k).to_string(), value: (*v).to_string() })
            .collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    /// Renders the key the way Prometheus writes sample lines:
    /// `name` or `name{k="v",k2="v2"}`.
    pub fn render(&self) -> String {
        self.render_with_extra(None)
    }

    /// [`MetricKey::render`] with an optional extra label appended (used for
    /// histogram `le` labels).
    pub fn render_with_extra(&self, extra: Option<(&str, &str)>) -> String {
        if self.labels.is_empty() && extra.is_none() {
            return self.name.clone();
        }
        let mut parts: Vec<String> = self
            .labels
            .iter()
            .map(|l| format!("{}=\"{}\"", l.key, l.value))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        format!("{}{{{}}}", self.name, parts.join(","))
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// Upper bound on distinct label combinations ("series") a single metric
/// family may register. Creation beyond the cap lands on the family's
/// `{overflow="true"}` series instead of a new one (see
/// [`MetricsRegistry::counter_with`]).
pub const MAX_SERIES_PER_FAMILY: usize = 64;

/// Name → handle registry. Handle resolution takes a read lock on the happy
/// path (metric already exists); recording through a resolved handle is
/// entirely lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: RwLock<HashMap<String, (MetricKey, Slot)>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn resolve<T, F, G>(&self, key: MetricKey, extract: F, create: G) -> Arc<T>
    where
        F: Fn(&Slot) -> Option<Arc<T>>,
        G: FnOnce() -> Slot,
    {
        let rendered = key.render();
        let read = self.slots.read().unwrap_or_else(|e| e.into_inner());
        if let Some((_, slot)) = read.get(&rendered) {
            match extract(slot) {
                Some(handle) => return handle,
                None => panic!(
                    "metric '{rendered}' already registered as a {}",
                    slot.kind()
                ),
            }
        }
        drop(read);
        let mut write = self.slots.write().unwrap_or_else(|e| e.into_inner());
        // Label-cardinality guard: creating a series past the per-family cap
        // collapses it into the family's single `{overflow="true"}` series,
        // so an unbounded label value (a per-query string, an attacker-
        // controlled path) cannot grow the registry without bound. Already-
        // registered series are untouched.
        let (key, rendered) = if !write.contains_key(&rendered)
            && write.values().filter(|(k, _)| k.name == key.name).count()
                >= MAX_SERIES_PER_FAMILY
        {
            let collapsed = MetricKey::new(&key.name, &[("overflow", "true")]);
            let r = collapsed.render();
            (collapsed, r)
        } else {
            (key, rendered)
        };
        let (_, slot) = write.entry(rendered.clone()).or_insert_with(|| (key, create()));
        match extract(slot) {
            Some(handle) => handle,
            None => panic!("metric '{rendered}' already registered as a {}", slot.kind()),
        }
    }

    /// Get-or-create a counter with no labels.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get-or-create a counter with labels.
    ///
    /// # Panics
    /// If the same name+labels is already registered as a different type.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.resolve(
            MetricKey::new(name, labels),
            |s| match s {
                Slot::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || Slot::Counter(Arc::new(Counter::default())),
        )
    }

    /// Get-or-create a gauge with no labels.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get-or-create a gauge with labels.
    ///
    /// # Panics
    /// If the same name+labels is already registered as a different type.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.resolve(
            MetricKey::new(name, labels),
            |s| match s {
                Slot::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || Slot::Gauge(Arc::new(Gauge::default())),
        )
    }

    /// Get-or-create a histogram with no labels.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds)
    }

    /// Get-or-create a histogram with labels. When the metric already exists
    /// its original bounds win; `bounds` only applies on first registration.
    ///
    /// # Panics
    /// If the same name+labels is already registered as a different type.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.resolve(
            MetricKey::new(name, labels),
            |s| match s {
                Slot::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || Slot::Histogram(Arc::new(Histogram::new(bounds))),
        )
    }

    /// Serializable point-in-time copy of every registered metric, sorted by
    /// rendered key for deterministic export.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let read = self.slots.read().unwrap_or_else(|e| e.into_inner());
        let mut snap = RegistrySnapshot::default();
        for (key, slot) in read.values() {
            match slot {
                Slot::Counter(c) => {
                    snap.counters.push(CounterSample { key: key.clone(), value: c.get() })
                }
                Slot::Gauge(g) => {
                    snap.gauges.push(GaugeSample { key: key.clone(), value: g.get() })
                }
                Slot::Histogram(h) => snap
                    .histograms
                    .push(HistogramSample { key: key.clone(), value: h.snapshot() }),
            }
        }
        drop(read);
        snap.counters.sort_by_key(|a| a.key.render());
        snap.gauges.sort_by_key(|a| a.key.render());
        snap.histograms.sort_by_key(|a| a.key.render());
        snap
    }

    /// Merges a previously exported snapshot back into the live registry:
    /// counters accumulate, gauges adopt the stored value, histograms merge
    /// bucket-wise. Lets run artifacts accumulate across CLI invocations.
    pub fn absorb(&self, snap: &RegistrySnapshot) {
        for c in &snap.counters {
            self.counter_by_key(&c.key).add(c.value);
        }
        for g in &snap.gauges {
            self.gauge_by_key(&g.key).set(g.value);
        }
        for h in &snap.histograms {
            self.histogram_by_key(&h.key, &h.value.bounds).absorb(&h.value);
        }
    }

    fn borrowed_labels(key: &MetricKey) -> Vec<(&str, &str)> {
        key.labels.iter().map(|l| (l.key.as_str(), l.value.as_str())).collect()
    }

    fn counter_by_key(&self, key: &MetricKey) -> Arc<Counter> {
        self.counter_with(&key.name, &Self::borrowed_labels(key))
    }

    fn gauge_by_key(&self, key: &MetricKey) -> Arc<Gauge> {
        self.gauge_with(&key.name, &Self::borrowed_labels(key))
    }

    fn histogram_by_key(&self, key: &MetricKey, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(&key.name, &Self::borrowed_labels(key), bounds)
    }
}

/// One counter sample in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric identity.
    pub key: MetricKey,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge sample in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric identity.
    pub key: MetricKey,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// One histogram sample in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric identity.
    pub key: MetricKey,
    /// Histogram state at snapshot time.
    pub value: HistogramSnapshot,
}

/// Serializable dump of a whole [`MetricsRegistry`] — the "run artifact"
/// the CLI persists next to its Prometheus export.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counters, sorted by rendered key.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by rendered key.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by rendered key.
    pub histograms: Vec<HistogramSample>,
}

impl RegistrySnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter value by family name and labels (test/CLI helper).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.counters.iter().find(|c| c.key == key).map(|c| c.value)
    }

    /// Looks up a gauge value by family name and labels.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        self.gauges.iter().find(|g| g.key == key).map(|g| g.value)
    }

    /// Looks up a histogram by family name and labels.
    pub fn histogram_value(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        let key = MetricKey::new(name, labels);
        self.histograms.iter().find(|h| h.key == key).map(|h| &h.value)
    }

    /// What happened since `baseline`: counters subtract (saturating),
    /// histograms subtract bucket-wise via [`HistogramSnapshot::delta`], and
    /// gauges keep their current value (a gauge is a level, not a rate).
    /// Series absent from the baseline pass through whole. This is what the
    /// CLI `watch` poller renders as a per-interval view.
    pub fn delta(&self, baseline: &RegistrySnapshot) -> RegistrySnapshot {
        let mut out = RegistrySnapshot::default();
        for c in &self.counters {
            let then = baseline
                .counters
                .iter()
                .find(|b| b.key == c.key)
                .map(|b| b.value)
                .unwrap_or(0);
            out.counters.push(CounterSample {
                key: c.key.clone(),
                value: c.value.saturating_sub(then),
            });
        }
        out.gauges = self.gauges.clone();
        for h in &self.histograms {
            let value = match baseline.histograms.iter().find(|b| b.key == h.key) {
                Some(b) => h.value.delta(&b.value),
                None => h.value.clone(),
            };
            out.histograms.push(HistogramSample { key: h.key.clone(), value });
        }
        out
    }

    /// Adds `other` into this snapshot: counters accumulate, histograms
    /// merge bucket-wise, and series only present in `other` are inserted.
    /// Gauges keep this snapshot's value when both carry the series (the
    /// caller's snapshot is the fresher level); unseen gauges are adopted.
    /// Output stays sorted by rendered key, like [`MetricsRegistry::snapshot`].
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.key == c.key) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            if !self.gauges.iter().any(|mine| mine.key == g.key) {
                self.gauges.push(g.clone());
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.key == h.key) {
                Some(mine) => mine.value.merge(&h.value),
                None => self.histograms.push(h.clone()),
            }
        }
        self.counters.sort_by_key(|a| a.key.render());
        self.gauges.sort_by_key(|a| a.key.render());
        self.histograms.sort_by_key(|a| a.key.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same underlying counter.
        assert_eq!(reg.counter("hits_total").get(), 5);

        let g = reg.gauge_with("temp", &[("zone", "a")]);
        g.set(1.5);
        g.add(0.25);
        assert_eq!(g.get(), 1.75);
        // Different labels are a different series.
        assert_eq!(reg.gauge_with("temp", &[("zone", "b")]).get(), 0.0);
    }

    #[test]
    fn series_per_family_are_capped_by_the_overflow_guard() {
        let reg = MetricsRegistry::new();
        // Fill the family to the cap with distinct label values.
        for i in 0..MAX_SERIES_PER_FAMILY {
            reg.counter_with("guarded_total", &[("path", &format!("p{i}"))]).inc();
        }
        // Every further distinct label lands on one overflow series instead
        // of growing the registry.
        for i in 0..10 {
            reg.counter_with("guarded_total", &[("path", &format!("extra{i}"))]).inc();
        }
        let snap = reg.snapshot();
        let family: Vec<_> =
            snap.counters.iter().filter(|c| c.key.name == "guarded_total").collect();
        assert_eq!(family.len(), MAX_SERIES_PER_FAMILY + 1, "cap plus the overflow series");
        assert_eq!(
            snap.counter_value("guarded_total", &[("overflow", "true")]),
            Some(10),
            "all overflowing increments share one series"
        );
        // Pre-existing series keep working and keep their identity.
        reg.counter_with("guarded_total", &[("path", "p0")]).inc();
        assert_eq!(reg.counter_with("guarded_total", &[("path", "p0")]).get(), 2);
        // Other families are unaffected by this family's overflow.
        reg.counter_with("other_total", &[("path", "x")]).inc();
        assert_eq!(reg.counter_with("other_total", &[("path", "x")]).get(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        reg.counter_with("c", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(reg.counter_with("c", &[("b", "2"), ("a", "1")]).get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("metric").inc();
        let _ = reg.gauge("metric");
    }

    #[test]
    fn histogram_buckets_quantiles_and_max() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 0.5, 1.5, 3.0, 10.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // dropped
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 15.5);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.quantile(1.0), 10.0); // overflow bucket → exact max
        // Median sample is 1.5, which lives in the (1, 2] bucket.
        let p50 = s.quantile(0.5);
        assert!(p50 > 1.0 && p50 <= 2.0, "p50 {p50} should fall in (1, 2]");
        assert!((s.mean() - 3.1).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new(&[1.0]).snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn boundary_samples_land_in_the_le_bucket() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // le="1" bucket, Prometheus `le` semantics
        h.observe(2.0);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 1, 0]);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("concurrent_total");
                    let h = reg.histogram("concurrent_hist", &[0.25, 0.5, 0.75]);
                    for i in 0..per_thread {
                        c.inc();
                        h.observe((i % 100) as f64 / 100.0);
                        if t == 0 && i % 1000 == 0 {
                            // Exercise the registry lookup path concurrently.
                            reg.gauge("concurrent_gauge").set(i as f64);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread panicked");
        }
        assert_eq!(reg.counter("concurrent_total").get(), threads * per_thread);
        let s = reg.histogram("concurrent_hist", &[0.25, 0.5, 0.75]).snapshot();
        assert_eq!(s.count, threads * per_thread);
        assert_eq!(s.counts.iter().sum::<u64>(), threads * per_thread);
        // Each thread contributed the same deterministic value stream, so
        // the per-bucket totals are exact, not merely consistent.
        // values 0.00..=0.25 → 26 per 100, 0.26..=0.50 → 25, 0.51..=0.75 → 25,
        // 0.76..=0.99 → 24.
        let per_bucket = [26, 25, 25, 24];
        for (got, want) in s.counts.iter().zip(per_bucket) {
            assert_eq!(*got, want * (threads * per_thread) / 100);
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json_and_absorbs() {
        let reg = MetricsRegistry::new();
        reg.counter_with("c_total", &[("task", "x")]).add(7);
        reg.gauge("g").set(2.5);
        let h = reg.histogram("h_seconds", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);

        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: RegistrySnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.counter_value("c_total", &[("task", "x")]), Some(7));

        // Absorbing into a fresh registry reproduces, absorbing twice doubles
        // counters (counters accumulate, gauges do not).
        let reg2 = MetricsRegistry::new();
        reg2.absorb(&back);
        reg2.absorb(&back);
        let snap2 = reg2.snapshot();
        assert_eq!(snap2.counter_value("c_total", &[("task", "x")]), Some(14));
        let h2 = snap2.histogram_value("h_seconds", &[]).expect("histogram");
        assert_eq!(h2.count, 4);
        assert_eq!(h2.max, 0.5);
        assert_eq!(snap2.gauges[0].value, 2.5);
    }

    #[test]
    fn reset_returns_histogram_to_pristine_state() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.counts, vec![0, 0, 0]);
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.max, 0.0);
        // The histogram keeps working after a reset.
        h.observe(1.5);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![0, 1, 0]);
        assert_eq!(s.max, 1.5);
    }

    #[test]
    fn histogram_delta_subtracts_at_bucket_boundaries() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // exactly on the le="1" bound → first bucket
        let baseline = h.snapshot();
        h.observe(1.0); // same boundary value again, after the baseline
        h.observe(2.0); // le="2" bound
        h.observe(3.0); // overflow
        let d = h.snapshot().delta(&baseline);
        // Only the post-baseline samples remain, each in its `le` bucket.
        assert_eq!(d.counts, vec![1, 1, 1]);
        assert_eq!(d.count, 3);
        assert!((d.sum - 6.0).abs() < 1e-12);
        assert_eq!(d.max, 3.0); // cumulative max: delta cannot un-merge it
    }

    #[test]
    fn histogram_delta_with_no_new_samples_is_empty() {
        let h = Histogram::new(&[1.0]);
        h.observe(0.5);
        let snap = h.snapshot();
        let d = snap.delta(&snap);
        assert_eq!(d.count, 0);
        assert_eq!(d.counts, vec![0, 0]);
        assert_eq!(d.sum, 0.0);
        assert_eq!(d.max, 0.0);
    }

    #[test]
    fn histogram_delta_survives_a_reset_between_snapshots() {
        let h = Histogram::new(&[1.0]);
        for _ in 0..5 {
            h.observe(0.5);
        }
        let baseline = h.snapshot();
        h.reset();
        h.observe(0.5);
        // Counts went backwards; saturating subtraction clamps to zero
        // instead of underflowing to ~u64::MAX garbage.
        let d = h.snapshot().delta(&baseline);
        assert_eq!(d.counts, vec![0, 0]);
        assert_eq!(d.count, 0);
    }

    #[test]
    fn histogram_delta_on_bounds_mismatch_returns_current() {
        let now = Histogram::new(&[1.0, 2.0]);
        now.observe(0.5);
        let other = Histogram::new(&[5.0]).snapshot();
        let d = now.snapshot().delta(&other);
        assert_eq!(d, now.snapshot());
    }

    #[test]
    fn registry_delta_reports_per_interval_rates() {
        let reg = MetricsRegistry::new();
        reg.counter("req_total").add(10);
        reg.gauge("depth").set(3.0);
        reg.histogram("lat", &[1.0]).observe(0.5);
        let baseline = reg.snapshot();
        reg.counter("req_total").add(7);
        reg.gauge("depth").set(9.0);
        reg.histogram("lat", &[1.0]).observe(2.0);
        reg.counter("new_total").inc(); // series born after the baseline
        let d = reg.snapshot().delta(&baseline);
        assert_eq!(d.counter_value("req_total", &[]), Some(7));
        assert_eq!(d.counter_value("new_total", &[]), Some(1));
        assert_eq!(d.gauge_value("depth", &[]), Some(9.0)); // level, not rate
        let lat = d.histogram_value("lat", &[]).expect("histogram");
        assert_eq!(lat.counts, vec![0, 1]);
        assert_eq!(lat.count, 1);
    }

    #[test]
    fn snapshot_merge_accumulates_and_inserts() {
        let a = MetricsRegistry::new();
        a.counter("shared_total").add(3);
        a.gauge("level").set(1.0);
        a.histogram("lat", &[1.0]).observe(0.5);
        let mut merged = a.snapshot();

        let b = MetricsRegistry::new();
        b.counter("shared_total").add(4);
        b.counter("only_b_total").add(2);
        b.gauge("level").set(9.0);
        let hb = b.histogram("lat", &[1.0]);
        hb.observe(0.5);
        hb.observe(7.0);
        merged.merge(&b.snapshot());

        assert_eq!(merged.counter_value("shared_total", &[]), Some(7));
        assert_eq!(merged.counter_value("only_b_total", &[]), Some(2));
        // Self's gauge level wins; it is the fresher reading.
        assert_eq!(merged.gauge_value("level", &[]), Some(1.0));
        let lat = merged.histogram_value("lat", &[]).expect("histogram");
        assert_eq!(lat.counts, vec![2, 1]);
        assert_eq!(lat.count, 3);
        assert_eq!(lat.max, 7.0);
    }

    #[test]
    fn metric_key_rendering() {
        assert_eq!(MetricKey::new("a", &[]).render(), "a");
        assert_eq!(
            MetricKey::new("a", &[("b", "1"), ("a", "2")]).render(),
            "a{a=\"2\",b=\"1\"}"
        );
        assert_eq!(
            MetricKey::new("a", &[("t", "x")]).render_with_extra(Some(("le", "+Inf"))),
            "a{t=\"x\",le=\"+Inf\"}"
        );
    }
}
