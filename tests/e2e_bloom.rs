//! End-to-end learned Bloom filter: the no-false-negative guarantee and the
//! memory advantage of the compressed variant.

use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{BloomConfig, LearnedBloom};
use setlearn_baselines::SetMembershipBloom;
use setlearn_data::{workload::membership_queries, GeneratorConfig};

fn cfg(vocab: u32, clsm: bool) -> BloomConfig {
    let base = if clsm { DeepSetsConfig::clsm(vocab) } else { DeepSetsConfig::lsm(vocab) };
    let mut c = BloomConfig::new(base);
    c.epochs = 30;
    c.learning_rate = 1e-2;
    c
}

#[test]
fn learned_filter_has_no_false_negatives_like_the_traditional_one() {
    let collection = GeneratorConfig::rw(800, 19).generate();
    let workload = membership_queries(&collection, 600, 600, 4, 5);
    let (learned, _) = LearnedBloom::build(&workload, &cfg(collection.num_elements(), true));
    // The traditional filter only answers queries up to its build-time size
    // cap, so size it to the workload's largest positive.
    let max_query = workload.iter().map(|(q, _)| q.len()).max().unwrap();
    let traditional = SetMembershipBloom::build(&collection, max_query, 0.01);
    for (q, label) in &workload {
        if *label {
            assert!(learned.contains(q), "learned FN on {q:?}");
            assert!(traditional.contains(q), "traditional FN on {q:?}");
        }
    }
}

#[test]
fn compressed_filter_is_smaller_at_large_vocabularies() {
    let collection = GeneratorConfig::rw(600, 3).generate();
    let workload = membership_queries(&collection, 300, 300, 4, 9);
    // Declare a large id space (the paper's Table 10 regime).
    let vocab = 100_000u32;
    let (lsm, _) = LearnedBloom::build(&workload, &cfg(vocab, false));
    let (clsm, _) = LearnedBloom::build(&workload, &cfg(vocab, true));
    assert!(
        clsm.model_size_bytes() * 10 < lsm.model_size_bytes(),
        "clsm {} vs lsm {}",
        clsm.model_size_bytes(),
        lsm.model_size_bytes()
    );
}

#[test]
fn scores_separate_classes_on_average() {
    let collection = GeneratorConfig::sd(400, 8).generate();
    let workload = membership_queries(&collection, 400, 400, 4, 3);
    let (filter, report) = LearnedBloom::build(&workload, &cfg(collection.num_elements(), false));
    assert!(report.training_accuracy > 0.75, "accuracy {}", report.training_accuracy);
    let (mut pos, mut neg, mut np, mut nn) = (0.0f64, 0.0f64, 0, 0);
    for (q, label) in &workload {
        if *label {
            pos += filter.score(q) as f64;
            np += 1;
        } else {
            neg += filter.score(q) as f64;
            nn += 1;
        }
    }
    assert!(pos / np as f64 > neg / nn as f64 + 0.2, "weak separation");
}
