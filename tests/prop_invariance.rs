//! Property-based tests of the workspace-wide invariants: permutation
//! invariance, compression losslessness through the encoder path, scaling
//! roundtrips, and Bloom-filter guarantees.

use proptest::prelude::*;
use setlearn::compress::CompressionSpec;
use setlearn::model::{CompressionKind, DeepSets, DeepSetsConfig, Pooling};
use setlearn_baselines::BloomFilter;
use setlearn_data::normalize;
use setlearn_nn::{Activation, LogMinMaxScaler};

fn model(vocab: u32, compression: CompressionKind, pooling: Pooling, seed: u64) -> DeepSets {
    DeepSets::new(DeepSetsConfig {
        vocab,
        embedding_dim: 4,
        phi_hidden: vec![8],
        rho_hidden: vec![8],
        pooling,
        hidden_activation: Activation::Tanh,
        output_activation: Activation::Sigmoid,
        compression,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any permutation of any set produces the identical prediction, for
    /// every encoder and pooling variant.
    #[test]
    fn deepsets_is_permutation_invariant(
        ids in proptest::collection::vec(0u32..500, 1..10),
        perm_seed in 0u64..1000,
        compressed in proptest::bool::ANY,
        pooling_idx in 0usize..3,
    ) {
        let set = normalize(ids);
        prop_assume!(!set.is_empty());
        let pooling = [Pooling::Sum, Pooling::Mean, Pooling::Max][pooling_idx];
        let compression = if compressed {
            CompressionKind::Optimal { ns: 2 }
        } else {
            CompressionKind::None
        };
        let m = model(500, compression, pooling, 9);
        // Deterministic permutation of the canonical set.
        let mut shuffled: Vec<u32> = set.to_vec();
        let n = shuffled.len();
        for i in 0..n {
            let j = ((perm_seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.swap(i, j);
        }
        prop_assert_eq!(m.predict_one(&set), m.predict_one(&shuffled));
    }

    /// Batch prediction equals one-by-one prediction.
    #[test]
    fn batch_and_single_predictions_agree(
        a in proptest::collection::vec(0u32..200, 1..6),
        b in proptest::collection::vec(0u32..200, 1..6),
    ) {
        let (a, b) = (normalize(a), normalize(b));
        prop_assume!(!a.is_empty() && !b.is_empty());
        let m = model(200, CompressionKind::None, Pooling::Sum, 4);
        let batch = m.predict_batch(&[&*a, &*b]);
        prop_assert_eq!(batch[0], m.predict_one(&a));
        prop_assert_eq!(batch[1], m.predict_one(&b));
    }

    /// Compression is lossless for every ns and any divisor >= 2.
    #[test]
    fn compression_roundtrip(
        max_id in 1u32..1_000_000,
        ns in 2usize..5,
        divisor in 2u32..5_000,
        frac in 0.0f64..1.0,
    ) {
        let spec = CompressionSpec::with_divisor(max_id, ns, divisor);
        let elem = (max_id as f64 * frac) as u32;
        prop_assert_eq!(spec.decompress(&spec.compress(elem)), elem);
    }

    /// Log-min-max scaling inverts within tolerance over its fitted range.
    #[test]
    fn scaler_roundtrip(values in proptest::collection::vec(0.0f64..1e9, 2..20), idx in 0usize..20) {
        let scaler = LogMinMaxScaler::fit(&values);
        let v = values[idx % values.len()];
        let back = scaler.unscale(scaler.scale(v));
        // f32 scaling limits precision; allow a relative tolerance.
        prop_assert!((back - v).abs() <= 2e-4 * (v + 1.0), "{v} -> {back}");
    }

    /// The traditional Bloom filter never produces false negatives.
    #[test]
    fn bloom_no_false_negatives(hashes in proptest::collection::vec(proptest::num::u64::ANY, 1..200)) {
        let mut bf = BloomFilter::new(hashes.len(), 0.01);
        for &h in &hashes {
            bf.insert_hash(h);
        }
        for &h in &hashes {
            prop_assert!(bf.contains_hash(h));
        }
    }
}
