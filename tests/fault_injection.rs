//! End-to-end fault injection: every failure mode in ISSUE scope must degrade
//! gracefully — corrupt weight files are rejected with a typed error, NaN
//! models fall back to exact auxiliary structures and raise a retrain signal,
//! and adversarial training configurations finish with finite weights via the
//! harness recovery loop.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::{DeepSets, DeepSetsConfig};
use setlearn::monitor::{DriftMonitor, MonitorConfig, RetrainReason};
use setlearn::persist::{load_weights, save_weights, PersistError};
use setlearn::tasks::{
    CardinalityConfig, IndexConfig, LearnedCardinality, LearnedSetIndex,
};
use setlearn::TrainPolicy;
use setlearn_data::{GeneratorConfig, SubsetIndex};

fn quick_guided(seed: u64) -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 8,
        rounds: 1,
        epochs_per_round: 4,
        percentile: 0.9,
        batch_size: 64,
        learning_rate: 5e-3,
        seed,
    }
}

fn poison(model: &mut DeepSets) {
    let poisoned: Vec<Vec<f32>> = model
        .snapshot_weights()
        .into_iter()
        .map(|b| vec![f32::NAN; b.len()])
        .collect();
    model.load_weight_buffers(&poisoned).expect("same shapes");
    assert!(model.has_non_finite_weights());
}

#[test]
fn corrupt_weight_file_yields_typed_error_never_panics() {
    let model = DeepSets::new(DeepSetsConfig::clsm(128));
    let mut path = std::env::temp_dir();
    path.push(format!("setlearn-fault-corrupt-{}.slw", std::process::id()));
    save_weights(&model, &path).expect("save");

    // Flip a byte in the middle of the stored payload.
    let mut bytes = std::fs::read(&path).expect("read back");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("rewrite");

    match load_weights(&path) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(msg.contains("checksum"), "diagnostic should name the check: {msg}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn nan_cardinality_model_serves_finite_and_requests_retrain() {
    let collection = GeneratorConfig::sd(300, 11).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided(3);
    cfg.max_subset_size = 2;
    let (mut est, _) = LearnedCardinality::build(&collection, &cfg);
    poison(est.model_mut());

    let mut monitor = DriftMonitor::new(
        1.2,
        MonitorConfig { max_fallbacks: 10, ..MonitorConfig::default() },
    );
    let subsets = SubsetIndex::build(&collection, 2);
    for (s, &truth) in subsets.iter().take(60) {
        let v = est.estimate_monitored(s, &mut monitor);
        assert!(v.is_finite(), "query {s:?} served non-finite {v}");
        assert!(v >= 0.0 && v <= collection.len() as f64 + 1.0, "query {s:?} -> {v}");
        let _ = truth;
    }
    assert!(est.serve_guard().non_finite_fallbacks() > 0);
    assert_eq!(monitor.should_retrain(), Some(RetrainReason::ServeFallbacks));
}

#[test]
fn nan_index_model_still_answers_membership_exactly() {
    let collection = GeneratorConfig::sd(250, 13).generate();
    let mut cfg = IndexConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided(5);
    cfg.max_subset_size = 2;
    let (mut index, _) = LearnedSetIndex::build(&collection, &cfg);
    poison(index.model_mut());

    // Every indexed subset must still resolve (via the guard's full-scan
    // fallback); the answers are checked against the exact subset index.
    let subsets = SubsetIndex::build(&collection, 2);
    for (s, _) in subsets.iter().take(40) {
        let profile = index.lookup_profiled(&collection, s);
        assert!(profile.position.is_some(), "subset {s:?} lost under NaN model");
    }
    assert!(index.serve_guard().fallbacks() > 0, "fallback path never engaged");
}

#[test]
fn guard_fallbacks_are_counted_and_traced() {
    let collection = GeneratorConfig::sd(300, 17).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided(7);
    cfg.max_subset_size = 2;
    let (mut est, _) = LearnedCardinality::build(&collection, &cfg);
    poison(est.model_mut());

    // The registry and tracer are process-global and other tests in this
    // binary also trigger fallbacks, so assert monotone deltas, not totals.
    let fallback_count = || {
        setlearn_obs::metrics()
            .snapshot()
            .counter_value(
                "setlearn_serve_fallbacks_total",
                &[("task", "cardinality"), ("reason", "non_finite")],
            )
            .unwrap_or(0)
    };
    let before = fallback_count();

    let subsets = SubsetIndex::build(&collection, 2);
    let served: usize = 25;
    for (s, _) in subsets.iter().take(served) {
        let v = est.estimate(s);
        assert!(v.is_finite(), "guard must keep serving finite answers");
    }

    // A few queries are answered by the exact auxiliary path without ever
    // invoking the model, so not every query falls back — but the vast
    // majority must, and each fallback must be counted.
    let after = fallback_count();
    let delta = after - before;
    assert!(
        delta >= served as u64 / 2,
        "NaN-model queries must count non_finite fallbacks: {before} -> {after}"
    );

    let trace_fallbacks = setlearn_obs::tracer()
        .records()
        .iter()
        .filter(|r| {
            r.kind == setlearn_obs::RecordKind::Event
                && r.name == "serve_fallback"
                && r.fields.iter().any(|f| {
                    f.key == "task" && f.text.as_deref() == Some("cardinality")
                })
                && r.fields.iter().any(|f| {
                    f.key == "reason" && f.text.as_deref() == Some("non_finite")
                })
        })
        .count();
    assert!(
        trace_fallbacks as u64 >= delta,
        "each fallback must emit a serve_fallback trace event, saw {trace_fallbacks}"
    );
}

#[test]
fn adversarial_learning_rate_finishes_finite_through_harness_recovery() {
    let data: Vec<(Vec<u32>, f32)> = (0..160)
        .map(|i| (vec![i % 40, (i * 7) % 40, (i * 13) % 40], (i % 10) as f32 / 10.0))
        .collect();
    let mut cfg = DeepSetsConfig::lsm(40);
    cfg.output_activation = setlearn_nn::Activation::Identity;
    let mut model = DeepSets::new(cfg);
    // A learning rate four orders of magnitude too hot: plain SGD diverges
    // to NaN within a few batches.
    let mut opt = setlearn_nn::Optimizer::Sgd { lr: 5e4, clip: None };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    let mut policy = TrainPolicy::epochs(25);
    policy.max_recoveries = 8;
    let report = model.train_with_harness(
        &data,
        setlearn_nn::Loss::Mse,
        &mut opt,
        32,
        &mut rng,
        &policy,
        None,
    );
    assert!(report.best_loss.is_finite(), "harness never found a finite epoch");
    assert!(report.recoveries > 0, "the hot learning rate should have tripped recovery");
    assert!(report.final_lr < 5e4, "learning rate was never backed off");
    assert!(!model.has_non_finite_weights(), "restored weights must be finite");
}
