//! End-to-end over real trained models: answers served over loopback TCP
//! (`SLP1` frames through `NetServer`/`NetClient`) are bit-identical to the
//! in-process [`LearnedSetStructure::query_batch`] path — values, guard
//! fallbacks, and bound misses alike — for all three tasks, unsharded and
//! sharded.

use setlearn::prelude::{
    aggregate_cardinality, BloomConfig, CardinalityConfig, GuidedConfig, IndexConfig,
    IndexStructure, LearnedBloom, LearnedCardinality, LearnedSetIndex, LearnedSetStructure,
    QueryOutcome, QueryRequest, QueryValue, ShardBy, ShardSpec, ShardedCardinality,
    ShardedCollection, WireTask,
};
use setlearn::model::DeepSetsConfig;
use setlearn_data::{ElementSet, GeneratorConfig, SetCollection, SubsetIndex};
use setlearn_serve::{
    BloomTask, CardinalityTask, IndexTask, NetClient, NetConfig, NetServer, ServeConfig,
    ServeRuntime, ShardedRuntime, WireBackend, WireOutcome,
};
use std::sync::Arc;
use std::time::Duration;

fn quick_guided() -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 4,
        rounds: 1,
        epochs_per_round: 2,
        percentile: 0.9,
        batch_size: 64,
        learning_rate: 5e-3,
        seed: 1,
    }
}

fn small_collection() -> SetCollection {
    GeneratorConfig::sd(200, 11).generate()
}

fn queries(collection: &SetCollection, n: usize) -> Vec<ElementSet> {
    SubsetIndex::build(collection, 2).iter().take(n).map(|(s, _)| s.clone()).collect()
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_batch: 32,
        max_delay: Duration::from_micros(200),
        queue_capacity: 512,
    }
}

/// Sends `qs` as one wire batch and returns the per-query outcomes.
fn over_the_wire(
    backend: Arc<dyn WireBackend>,
    task: WireTask,
    qs: &[ElementSet],
) -> Vec<WireOutcome> {
    let server =
        NetServer::bind("127.0.0.1:0", backend, NetConfig::default()).expect("bind loopback");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let requests: Vec<QueryRequest> =
        qs.iter().map(|q| QueryRequest::new(q.to_vec())).collect();
    let outcomes = client.query_batch(task, &requests).expect("query batch");
    drop(client);
    server.shutdown();
    outcomes
}

/// The wire response must carry the local outcome bit-for-bit: the typed
/// value (f64 compared on raw bits), the guard-fallback reason, and the
/// bound-miss flag.
fn assert_wire_equals<T, F: Fn(&QueryValue, &T)>(
    wire: &[WireOutcome],
    local: &[QueryOutcome<T>],
    check_value: F,
) {
    assert_eq!(wire.len(), local.len());
    for (w, l) in wire.iter().zip(local) {
        let w = w.as_ref().expect("no query should error on an idle runtime");
        check_value(&w.value, &l.value);
        assert_eq!(w.fallback, l.fallback, "fallback reason changed in transit");
        assert_eq!(w.bound_miss, l.bound_miss, "bound-miss flag changed in transit");
    }
}

#[test]
fn cardinality_over_loopback_is_bit_identical_to_query_batch() {
    let collection = small_collection();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided();
    cfg.max_subset_size = 2;
    let (estimator, _) = LearnedCardinality::build(&collection, &cfg);
    let qs = queries(&collection, 150);
    let local = estimator.query_batch(&qs);

    let runtime =
        Arc::new(ServeRuntime::start(CardinalityTask::new(estimator), serve_config()));
    let wire = over_the_wire(Arc::clone(&runtime) as _, WireTask::Cardinality, &qs);
    assert_wire_equals(&wire, &local, |got, want: &f64| match got {
        QueryValue::Cardinality(v) => assert_eq!(v.to_bits(), want.to_bits()),
        other => panic!("cardinality answered with {other:?}"),
    });
    Arc::try_unwrap(runtime).map_err(|_| "runtime still shared").unwrap().shutdown();
}

#[test]
fn index_over_loopback_is_bit_identical_to_query_batch() {
    let collection = Arc::new(small_collection());
    let cfg = IndexConfig {
        model: DeepSetsConfig::lsm(collection.num_elements()),
        guided: quick_guided(),
        max_subset_size: 2,
        range_length: 50.0,
        target: setlearn::tasks::PositionTarget::First,
    };
    let (index, _) = LearnedSetIndex::build(&collection, &cfg);
    let structure = IndexStructure { index, collection: Arc::clone(&collection) };
    let qs = queries(&collection, 120);
    let local = structure.query_batch(&qs);

    let runtime = Arc::new(ServeRuntime::start(IndexTask::new(structure), serve_config()));
    let wire = over_the_wire(Arc::clone(&runtime) as _, WireTask::Index, &qs);
    assert_wire_equals(&wire, &local, |got, want: &Option<usize>| match got {
        QueryValue::Position(p) => assert_eq!(*p, want.map(|v| v as u64)),
        other => panic!("index answered with {other:?}"),
    });
    Arc::try_unwrap(runtime).map_err(|_| "runtime still shared").unwrap().shutdown();
}

#[test]
fn bloom_over_loopback_is_bit_identical_to_query_batch() {
    let collection = small_collection();
    let mut cfg = BloomConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.epochs = 4;
    let (filter, _) = LearnedBloom::build_from_collection(&collection, 300, 300, 2, &cfg);
    let qs = queries(&collection, 120);
    let local = filter.query_batch(&qs);

    let runtime = Arc::new(ServeRuntime::start(BloomTask::new(filter), serve_config()));
    let wire = over_the_wire(Arc::clone(&runtime) as _, WireTask::Bloom, &qs);
    assert_wire_equals(&wire, &local, |got, want: &bool| match got {
        QueryValue::Membership(m) => assert_eq!(m, want),
        other => panic!("bloom answered with {other:?}"),
    });
    Arc::try_unwrap(runtime).map_err(|_| "runtime still shared").unwrap().shutdown();
}

/// The sharded fan-out path over the wire: every query hits both shards and
/// the aggregated answer equals the in-process sharded structure's.
#[test]
fn sharded_cardinality_over_loopback_is_bit_identical_to_query_batch() {
    let collection = small_collection();
    let sharded =
        ShardedCollection::partition(&collection, ShardSpec::new(2, ShardBy::Hash)).unwrap();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided();
    cfg.max_subset_size = 2;
    let (estimator, _) = ShardedCardinality::build(&sharded, &cfg).unwrap();
    let qs = queries(&collection, 100);
    let local = estimator.query_batch(&qs);

    let tasks: Vec<CardinalityTask> =
        estimator.into_shards().into_iter().map(CardinalityTask::new).collect();
    let runtime =
        Arc::new(ShardedRuntime::start(tasks, serve_config(), aggregate_cardinality));
    let wire = over_the_wire(Arc::clone(&runtime) as _, WireTask::Cardinality, &qs);
    assert_wire_equals(&wire, &local, |got, want: &f64| match got {
        QueryValue::Cardinality(v) => assert_eq!(v.to_bits(), want.to_bits()),
        other => panic!("sharded cardinality answered with {other:?}"),
    });
    Arc::try_unwrap(runtime).map_err(|_| "runtime still shared").unwrap().shutdown();
}
