//! End-to-end cardinality estimation across crates: generator → subset
//! enumeration → guided training → estimates vs the exact oracle.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn_baselines::CardinalityMap;
use setlearn_data::{GeneratorConfig, SubsetIndex};
use setlearn_nn::q_error;

fn quick_guided(percentile: f64) -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 20,
        rounds: 1,
        epochs_per_round: 10,
        percentile,
        batch_size: 128,
        learning_rate: 5e-3,
        seed: 3,
    }
}

fn avg_qerr(est: &LearnedCardinality, subsets: &SubsetIndex, model_only: bool) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (s, info) in subsets.iter() {
        let e = if model_only { est.estimate_model_only(s) } else { est.estimate(s) };
        total += q_error(e, info.count as f64, 1.0);
        n += 1;
    }
    total / n as f64
}

#[test]
fn hybrid_estimator_beats_model_only_and_stays_accurate() {
    let collection = GeneratorConfig::sd(600, 5).generate();
    let subsets = SubsetIndex::build(&collection, 3);
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided(0.9);
    cfg.max_subset_size = 3;
    let (est, report) = LearnedCardinality::build_from_subsets(&subsets, &cfg);
    assert!(report.outliers > 0, "hybrid should exile some outliers");

    let hybrid = avg_qerr(&est, &subsets, false);
    let model_only = avg_qerr(&est, &subsets, true);
    assert!(hybrid <= model_only, "hybrid {hybrid} vs model-only {model_only}");
    assert!(hybrid < 2.5, "avg q-error too high: {hybrid}");
}

#[test]
fn learned_estimator_is_much_smaller_than_the_hashmap() {
    let collection = GeneratorConfig::rw(1_500, 9).generate();
    let subsets = SubsetIndex::build(&collection, 3);
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::clsm(collection.num_elements()));
    cfg.guided = quick_guided(0.9);
    let (est, _) = LearnedCardinality::build_from_subsets(&subsets, &cfg);
    let map = CardinalityMap::build(&collection, 3);
    assert!(
        est.size_bytes() * 3 < map.size_bytes(),
        "learned {} vs hashmap {}",
        est.size_bytes(),
        map.size_bytes()
    );
    // The map is exact; the estimator should still be in its ballpark.
    let q = &collection.get(3)[..2];
    let e = est.estimate(q);
    let t = map.cardinality(q) as f64;
    assert!(q_error(e, t, 1.0) < 16.0, "estimate {e} vs truth {t}");
}

#[test]
fn estimates_are_permutation_invariant() {
    let collection = GeneratorConfig::sd(300, 2).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided(1.0);
    cfg.max_subset_size = 2;
    let (est, _) = LearnedCardinality::build(&collection, &cfg);
    let set = collection.get(0);
    let fwd: Vec<u32> = set.to_vec();
    let mut rev = fwd.clone();
    rev.reverse();
    // The estimator canonicalizes nothing itself — queries are canonical
    // sets — but any canonical ordering of the same ids must agree.
    assert_eq!(est.estimate(&fwd), est.estimate(&fwd));
    let mut sorted = rev;
    sorted.sort_unstable();
    assert_eq!(est.estimate(&fwd), est.estimate(&sorted));
}
