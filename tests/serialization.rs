//! Serialization roundtrips: trained structures keep their answers after a
//! JSON dump/load (the paper persists weight-only model dumps).

use setlearn::hybrid::GuidedConfig;
use setlearn::model::{DeepSets, DeepSetsConfig};
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn_data::GeneratorConfig;

fn quick_guided() -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 5,
        rounds: 1,
        epochs_per_round: 3,
        percentile: 0.9,
        batch_size: 64,
        learning_rate: 5e-3,
        seed: 2,
    }
}

#[test]
fn deepsets_roundtrips_through_json() {
    let model = DeepSets::new(DeepSetsConfig::clsm(1_000));
    let json = serde_json::to_string(&model).expect("serialize");
    let back: DeepSets = serde_json::from_str(&json).expect("deserialize");
    for q in [&[1u32, 2][..], &[999u32][..], &[5u32, 50, 500][..]] {
        assert_eq!(model.predict_one(q), back.predict_one(q));
    }
}

#[test]
fn trained_estimator_roundtrips_through_json() {
    let collection = GeneratorConfig::sd(200, 6).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided();
    cfg.max_subset_size = 2;
    let (est, _) = LearnedCardinality::build(&collection, &cfg);
    let json = serde_json::to_string(&est).expect("serialize");
    let back: LearnedCardinality = serde_json::from_str(&json).expect("deserialize");
    for (_, set) in collection.iter().take(20) {
        let q = &set[..2.min(set.len())];
        assert_eq!(est.estimate(q), back.estimate(q), "query {q:?}");
    }
}

mod slw2 {
    //! Corruption coverage for the checksummed `SLW2` binary weight format.

    use setlearn::model::{DeepSets, DeepSetsConfig};
    use setlearn::persist::{
        decode_weights, encode_weights, encode_weights_legacy_v1, load_weights, save_weights,
        PersistError,
    };

    fn model() -> DeepSets {
        DeepSets::new(DeepSetsConfig::lsm(64))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("setlearn-slw2-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn binary_weights_roundtrip_through_a_file() {
        let m = model();
        let path = tmp("roundtrip.slw");
        save_weights(&m, &path).expect("save");
        let back = load_weights(&path).expect("load");
        for q in [&[1u32][..], &[2u32, 3][..], &[10u32, 20, 30][..]] {
            assert_eq!(m.predict_one(q), back.predict_one(q));
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_file_is_corrupt_not_a_panic() {
        let bytes = encode_weights(&model()).expect("encode");
        // Every truncation point must fail cleanly — never panic, never
        // yield a model built from partial data.
        for cut in [4, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            match decode_weights(&bytes[..cut]) {
                Err(PersistError::Corrupt(_)) | Err(PersistError::Format(_)) => {}
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_in_the_payload_is_detected() {
        let bytes = encode_weights(&model()).expect("encode");
        // Flip one bit in each of a spread of payload bytes (past the
        // 9-byte header); CRC-32 must catch all single-bit errors.
        let header = 9;
        let step = ((bytes.len() - header) / 50).max(1);
        for i in (header..bytes.len()).step_by(step) {
            let mut evil = bytes.clone();
            evil[i] ^= 0x10;
            match decode_weights(&evil) {
                Err(PersistError::Corrupt(_)) | Err(PersistError::Format(_)) => {}
                other => panic!("bit flip at byte {i} gave {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = encode_weights(&model()).expect("encode");
        bytes[..4].copy_from_slice(b"NOPE");
        assert!(matches!(decode_weights(&bytes), Err(PersistError::Format(_))));
        assert!(matches!(decode_weights(b""), Err(PersistError::Format(_))));
    }

    #[test]
    fn legacy_slw1_files_still_load() {
        let m = model();
        let v1 = encode_weights_legacy_v1(&m).expect("encode v1");
        assert_eq!(&v1[..4], b"SLW1");
        let back = decode_weights(&v1).expect("legacy decode");
        assert_eq!(m.predict_one(&[7, 8]), back.predict_one(&[7, 8]));
    }
}

#[test]
fn deserialized_model_can_keep_training() {
    let model = DeepSets::new(DeepSetsConfig::lsm(100));
    let json = serde_json::to_string(&model).unwrap();
    let mut back: DeepSets = serde_json::from_str(&json).unwrap();
    back.zero_grad(); // restores the skipped gradient buffers
    let data = vec![(vec![1u32, 2], 0.7f32), (vec![3u32], 0.2)];
    let mut opt = setlearn_nn::Optimizer::adam(0.01);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let loss = back.train_epoch(&data, setlearn_nn::Loss::Mse, &mut opt, 2, &mut rng);
    assert!(loss.is_finite());
}
