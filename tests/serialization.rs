//! Serialization roundtrips: trained structures keep their answers after a
//! JSON dump/load (the paper persists weight-only model dumps).

use setlearn::hybrid::GuidedConfig;
use setlearn::model::{DeepSets, DeepSetsConfig};
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn_data::GeneratorConfig;

fn quick_guided() -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 5,
        rounds: 1,
        epochs_per_round: 3,
        percentile: 0.9,
        batch_size: 64,
        learning_rate: 5e-3,
        seed: 2,
    }
}

#[test]
fn deepsets_roundtrips_through_json() {
    let model = DeepSets::new(DeepSetsConfig::clsm(1_000));
    let json = serde_json::to_string(&model).expect("serialize");
    let back: DeepSets = serde_json::from_str(&json).expect("deserialize");
    for q in [&[1u32, 2][..], &[999u32][..], &[5u32, 50, 500][..]] {
        assert_eq!(model.predict_one(q), back.predict_one(q));
    }
}

#[test]
fn trained_estimator_roundtrips_through_json() {
    let collection = GeneratorConfig::sd(200, 6).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = quick_guided();
    cfg.max_subset_size = 2;
    let (est, _) = LearnedCardinality::build(&collection, &cfg);
    let json = serde_json::to_string(&est).expect("serialize");
    let back: LearnedCardinality = serde_json::from_str(&json).expect("deserialize");
    for (_, set) in collection.iter().take(20) {
        let q = &set[..2.min(set.len())];
        assert_eq!(est.estimate(q), back.estimate(q), "query {q:?}");
    }
}

#[test]
fn deserialized_model_can_keep_training() {
    let model = DeepSets::new(DeepSetsConfig::lsm(100));
    let json = serde_json::to_string(&model).unwrap();
    let mut back: DeepSets = serde_json::from_str(&json).unwrap();
    back.zero_grad(); // restores the skipped gradient buffers
    let data = vec![(vec![1u32, 2], 0.7f32), (vec![3u32], 0.2)];
    let mut opt = setlearn_nn::Optimizer::adam(0.01);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let loss = back.train_epoch(&data, setlearn_nn::Loss::Mse, &mut opt, 2, &mut rng);
    assert!(loss.is_finite());
}
