//! §7.2 lifecycle: a deployed estimator absorbs updates through its delta
//! layer, the drift monitor watches accuracy and the update budget, and a
//! rebuild restores the baseline.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::monitor::{DriftMonitor, MonitorConfig, RetrainReason};
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn_data::{GeneratorConfig, SetCollection, SubsetIndex};
use setlearn_nn::q_error;

fn build(collection: &SetCollection) -> LearnedCardinality {
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = GuidedConfig {
        warmup_epochs: 20,
        rounds: 1,
        epochs_per_round: 10,
        percentile: 0.9,
        batch_size: 64,
        learning_rate: 5e-3,
        seed: 13,
    };
    cfg.max_subset_size = 2;
    LearnedCardinality::build(collection, &cfg).0
}

fn baseline_q_error(est: &LearnedCardinality, collection: &SetCollection) -> f64 {
    let subsets = SubsetIndex::build(collection, 2);
    let mut total = 0.0;
    let mut n = 0;
    for (s, info) in subsets.iter() {
        total += q_error(est.estimate(s), info.count as f64, 1.0);
        n += 1;
    }
    total / n as f64
}

#[test]
fn updates_monitor_and_rebuild_close_the_loop() {
    // Phase 1: build on the initial collection and record the baseline.
    let initial = GeneratorConfig::sd(500, 21).generate();
    let mut est = build(&initial);
    let baseline = baseline_q_error(&est, &initial);
    let mut monitor = DriftMonitor::new(
        baseline.max(1.0),
        MonitorConfig {
            window: 128,
            degradation_factor: 1.5,
            max_updates: 400,
            min_observations: 32,
            max_fallbacks: 256,
        },
    );
    assert!(monitor.should_retrain().is_none());

    // Phase 2: the collection grows — new sets arrive, routed through the
    // delta layer; the application also feeds back observed truths.
    let arrivals = GeneratorConfig::sd(400, 77).generate();
    let mut grown_sets: Vec<Vec<u32>> = initial.sets().iter().map(|s| s.to_vec()).collect();
    for (_, set) in arrivals.iter() {
        // Remap arrivals into the existing vocabulary.
        let remapped: Vec<u32> =
            set.iter().map(|&e| e % initial.num_elements()).collect();
        let remapped = setlearn_data::normalize(remapped);
        if remapped.is_empty() {
            continue;
        }
        est.note_inserted_set(&remapped);
        monitor.record_update();
        grown_sets.push(remapped.to_vec());
    }
    let grown = SetCollection::new(grown_sets, initial.num_elements());

    // The delta layer keeps single-element estimates exactly in sync.
    let subsets_after = SubsetIndex::build(&grown, 1);
    for (s, info) in subsets_after.iter().take(200) {
        monitor.observe(est.estimate(s), info.count as f64);
    }
    // Deltas make the estimator track the grown collection well...
    let drifted = baseline_q_error(&est, &grown);
    // ...but the update budget (400 arrivals) has been exhausted.
    assert_eq!(monitor.pending_updates(), 400);
    assert_eq!(monitor.should_retrain(), Some(RetrainReason::UpdateBudget));

    // Phase 3: rebuild on the grown collection and reset the monitor.
    let rebuilt = build(&grown);
    let rebuilt_q = baseline_q_error(&rebuilt, &grown);
    monitor.reset(rebuilt_q.max(1.0));
    assert!(monitor.should_retrain().is_none());
    assert_eq!(rebuilt.pending_updates(), 0);
    assert!(
        rebuilt_q <= drifted * 1.5,
        "rebuild should not be worse than the drifted structure: {rebuilt_q} vs {drifted}"
    );
}

#[test]
fn accuracy_drop_alone_also_triggers() {
    let collection = GeneratorConfig::sd(300, 9).generate();
    let est = build(&collection);
    let baseline = baseline_q_error(&est, &collection);
    let mut monitor = DriftMonitor::new(
        baseline.max(1.0),
        MonitorConfig {
            window: 64,
            degradation_factor: 1.5,
            max_updates: usize::MAX,
            min_observations: 16,
            max_fallbacks: 0,
        },
    );
    // Feed estimates against *wrong* truths (simulating a distribution the
    // model has never seen).
    for (_, set) in collection.iter().take(64) {
        let q = &set[..1];
        monitor.observe(est.estimate(q), 10_000.0);
    }
    assert_eq!(monitor.should_retrain(), Some(RetrainReason::AccuracyDrop));
}
