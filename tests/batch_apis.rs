//! Batched query APIs agree with their one-at-a-time counterparts
//! (including the paper's §9 multi-membership direction), exercised
//! through the unified [`setlearn::tasks::LearnedSetStructure`] surface.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{
    BloomConfig, CardinalityConfig, IndexConfig, IndexStructure, LearnedBloom,
    LearnedCardinality, LearnedSetIndex, LearnedSetStructure,
};
use setlearn_data::{workload::membership_queries, ElementSet, GeneratorConfig};
use std::sync::Arc;

fn quick_guided() -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 8,
        rounds: 1,
        epochs_per_round: 4,
        percentile: 0.9,
        batch_size: 64,
        learning_rate: 5e-3,
        seed: 3,
    }
}

#[test]
fn cardinality_batch_equals_singles() {
    let c = GeneratorConfig::rw(400, 7).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::clsm(c.num_elements()));
    cfg.guided = quick_guided();
    cfg.max_subset_size = 2;
    let (est, _) = LearnedCardinality::build(&c, &cfg);
    let queries: Vec<ElementSet> =
        c.sets().iter().take(50).map(|s| s[..2.min(s.len())].into()).collect();
    let batch = est.query_batch(&queries);
    for (q, b) in queries.iter().zip(batch) {
        assert_eq!(b.value, est.estimate(q), "query {q:?}");
    }
    assert!(est.query_batch(&[]).is_empty());
}

#[test]
fn index_batch_equals_singles() {
    let c = GeneratorConfig::rw(300, 9).generate();
    let mut cfg = IndexConfig::new(DeepSetsConfig::lsm(c.num_elements()));
    cfg.guided = quick_guided();
    cfg.max_subset_size = 2;
    let (index, _) = LearnedSetIndex::build(&c, &cfg);
    let queries: Vec<ElementSet> =
        c.sets().iter().take(50).map(|s| s[..2.min(s.len())].into()).collect();
    let singles: Vec<Option<usize>> = queries.iter().map(|q| index.lookup(&c, q)).collect();
    let structure = IndexStructure { index, collection: Arc::new(c) };
    let batch = structure.query_batch(&queries);
    for ((q, b), want) in queries.iter().zip(batch).zip(singles) {
        assert_eq!(b.value, want, "query {q:?}");
    }
}

#[test]
fn bloom_multi_membership_equals_singles_and_keeps_guarantee() {
    let c = GeneratorConfig::rw(400, 5).generate();
    let workload = membership_queries(&c, 300, 300, 4, 11);
    let mut cfg = BloomConfig::new(DeepSetsConfig::clsm(c.num_elements()));
    cfg.epochs = 20;
    let (filter, _) = LearnedBloom::build(&workload, &cfg);
    let queries: Vec<ElementSet> = workload.iter().map(|(q, _)| q.clone()).collect();
    let batch = filter.query_batch(&queries);
    for ((q, label), b) in workload.iter().zip(batch) {
        assert_eq!(b.value, filter.contains(q));
        if *label {
            assert!(b.value, "multi-membership false negative on {q:?}");
        }
    }
}
