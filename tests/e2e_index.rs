//! End-to-end learned set index: soundness of the hybrid search, update
//! handling, and the degenerate fall-back behaviour.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{IndexConfig, LearnedSetIndex};
use setlearn_data::{GeneratorConfig, SubsetIndex};

fn cfg(vocab: u32, percentile: f64) -> IndexConfig {
    let mut c = IndexConfig::new(DeepSetsConfig::clsm(vocab));
    c.guided = GuidedConfig {
        warmup_epochs: 15,
        rounds: 1,
        epochs_per_round: 10,
        percentile,
        batch_size: 128,
        learning_rate: 5e-3,
        seed: 7,
    };
    c.max_subset_size = 2;
    c.range_length = 32.0;
    c
}

#[test]
fn hybrid_index_finds_every_trained_subset_exactly() {
    let collection = GeneratorConfig::tweets(800, 15).generate();
    let subsets = SubsetIndex::build(&collection, 2);
    let (index, _) = LearnedSetIndex::build_from_subsets(
        &collection,
        &subsets,
        &cfg(collection.num_elements(), 0.9),
    );
    for (s, info) in subsets.iter() {
        assert_eq!(
            index.lookup(&collection, s),
            Some(info.first_pos as usize),
            "subset {s:?}"
        );
    }
}

#[test]
fn no_removal_variant_is_also_sound_but_scans_more() {
    let collection = GeneratorConfig::rw(500, 4).generate();
    let subsets = SubsetIndex::build(&collection, 2);
    let (hybrid, hybrid_report) = LearnedSetIndex::build_from_subsets(
        &collection,
        &subsets,
        &cfg(collection.num_elements(), 0.9),
    );
    let (raw, raw_report) = LearnedSetIndex::build_from_subsets(
        &collection,
        &subsets,
        &cfg(collection.num_elements(), 1.0),
    );
    // Both sound.
    for (s, info) in subsets.iter().take(500) {
        assert_eq!(hybrid.lookup(&collection, s), Some(info.first_pos as usize));
        assert_eq!(raw.lookup(&collection, s), Some(info.first_pos as usize));
    }
    // Removal leaves nothing in the raw aux tree, everything answered by
    // scanning; the hybrid exiles outliers.
    assert_eq!(raw.aux_len(), 0);
    assert!(hybrid.aux_len() > 0);
    assert!(raw_report.outliers == 0 && hybrid_report.outliers > 0);
}

#[test]
fn updates_survive_and_dominate_lookups() {
    let collection = GeneratorConfig::rw(400, 6).generate();
    let (mut index, _) =
        LearnedSetIndex::build(&collection, &cfg(collection.num_elements(), 0.9));
    let q: Vec<u32> = collection.get(100)[..2].to_vec();
    let original = index.lookup(&collection, &q);
    assert!(original.is_some());
    index.record_update(&q, 1);
    assert_eq!(index.lookup(&collection, &q), Some(1));
    // aux_fraction grows with updates — the §7.2 rebuild signal.
    assert!(index.aux_fraction(1_000) > 0.0);
}

#[test]
fn last_occurrence_index_finds_the_last_position() {
    let collection = GeneratorConfig::rw(400, 12).generate();
    let mut c = cfg(collection.num_elements(), 0.9);
    c.target = setlearn::tasks::PositionTarget::Last;
    let subsets = SubsetIndex::build(&collection, 2);
    let (index, _) = LearnedSetIndex::build_from_subsets(&collection, &subsets, &c);
    for (s, info) in subsets.iter() {
        assert_eq!(
            index.lookup(&collection, s),
            Some(info.last_pos as usize),
            "subset {s:?}"
        );
    }
    // Batch agrees.
    let queries: Vec<setlearn_data::ElementSet> =
        subsets.iter().take(100).map(|(s, _)| s.clone()).collect();
    let batch = index.lookup_batch_profiled(&collection, &queries);
    for (q, b) in queries.iter().zip(batch) {
        assert_eq!(b.position, index.lookup(&collection, q));
    }
}

#[test]
fn out_of_contract_queries_do_not_panic() {
    let collection = GeneratorConfig::rw(300, 8).generate();
    let (index, _) =
        LearnedSetIndex::build(&collection, &cfg(collection.num_elements(), 0.9));
    // Larger than the trained subset cap: allowed to miss, must not panic.
    let big: Vec<u32> = collection.get(0).to_vec();
    let _ = index.lookup(&collection, &big);
    // Non-existent combination.
    let ghost = vec![0u32, collection.num_elements() - 1];
    let _ = index.lookup(&collection, &ghost);
}
