//! Shard-equivalence suite: a sharded structure must answer like its
//! unsharded counterpart across shard counts N ∈ {1, 2, 7}.
//!
//! * A single range shard **is** the whole collection, so every task must
//!   reproduce the unsharded build bit-for-bit (same training data, same
//!   seed, same answers).
//! * For N > 1 the aggregation semantics carry the guarantees across the
//!   partition: cardinality errors compose additively (the documented
//!   triangle bound over per-shard errors), index lookups return the same
//!   global first positions, and the bloom OR keeps the per-shard
//!   no-false-negative guarantee for every global positive.
//! * Parallel batch answers must be bit-for-bit the sequential ones at
//!   every shard count.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::{CompressionKind, DeepSetsConfig};
use setlearn::tasks::{
    BloomConfig, CardinalityConfig, IndexConfig, LearnedBloom, LearnedCardinality,
    LearnedSetStructure, PositionTarget, ShardedBloom, ShardedCardinality, ShardedIndex,
    ShardedIndexStructure,
};
use setlearn::{ShardBy, ShardSpec, ShardedCollection};
use setlearn_data::{ElementSet, GeneratorConfig, SetCollection, SubsetIndex};

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn collection() -> SetCollection {
    GeneratorConfig::sd(120, 3).generate()
}

fn quick_guided(seed: u64) -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 4,
        rounds: 1,
        epochs_per_round: 2,
        percentile: 0.9,
        batch_size: 64,
        learning_rate: 5e-3,
        seed,
    }
}

fn cardinality_cfg(vocab: u32) -> CardinalityConfig {
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(vocab));
    cfg.guided = quick_guided(1);
    cfg.max_subset_size = 2;
    cfg
}

fn trained_subsets(c: &SetCollection) -> Vec<(ElementSet, u64)> {
    SubsetIndex::build(c, 2).iter().map(|(s, i)| (s.clone(), i.count)).collect()
}

#[test]
fn single_range_shard_reproduces_the_unsharded_cardinality_bit_for_bit() {
    let c = collection();
    let cfg = cardinality_cfg(c.num_elements());
    let (unsharded, _) = LearnedCardinality::build(&c, &cfg);
    let one =
        ShardedCollection::partition(&c, ShardSpec::new(1, ShardBy::Range)).unwrap();
    let (sharded, _) = ShardedCardinality::build(&one, &cfg).unwrap();
    let queries: Vec<ElementSet> =
        trained_subsets(&c).into_iter().map(|(s, _)| s).collect();
    // Same training data + same seed ⇒ the same model: f64 equality, not
    // tolerance.
    assert_eq!(sharded.query_batch(&queries), unsharded.query_batch(&queries));
    for q in queries.iter().take(50) {
        assert_eq!(sharded.estimate(q), unsharded.estimate(q), "query {q:?}");
    }
}

#[test]
fn sharded_cardinality_error_composes_additively_across_shard_counts() {
    let c = collection();
    let cfg = cardinality_cfg(c.num_elements());
    let subsets = trained_subsets(&c);
    let queries: Vec<ElementSet> = subsets.iter().map(|(s, _)| s.clone()).collect();
    for n in SHARD_COUNTS {
        for by in [ShardBy::Hash, ShardBy::Range] {
            let sharded_c =
                ShardedCollection::partition(&c, ShardSpec::new(n, by)).unwrap();
            let (model, _) = ShardedCardinality::build(&sharded_c, &cfg).unwrap();
            let shard_subsets: Vec<SubsetIndex> =
                sharded_c.shards().iter().map(|s| SubsetIndex::build(s, 2)).collect();
            // Parallel batch answers are bit-for-bit the sequential ones.
            let outcomes = model.query_batch(&queries);
            for threads in [2, 5] {
                assert_eq!(
                    outcomes,
                    model.query_batch_parallel(&queries, threads),
                    "N={n} {by}: parallel/sequential divergence at {threads} threads"
                );
            }
            for ((q, truth), outcome) in subsets.iter().zip(&outcomes) {
                // The partition's exact counts are additive…
                let shard_truths: Vec<f64> = shard_subsets
                    .iter()
                    .map(|s| s.get(q).map_or(0.0, |i| i.count as f64))
                    .collect();
                assert_eq!(
                    shard_truths.iter().sum::<f64>(),
                    *truth as f64,
                    "N={n} {by}: partition lost or duplicated sets for {q:?}"
                );
                // …and the aggregate error respects the documented bound:
                // |Σ estimates − truth| ≤ Σ per-shard errors.
                let per_shard_error: f64 = model
                    .shards()
                    .iter()
                    .zip(&shard_truths)
                    .map(|(m, t)| (m.estimate(q) - t).abs())
                    .sum();
                assert!(
                    (outcome.value - *truth as f64).abs() <= per_shard_error + 1e-9,
                    "N={n} {by}: aggregate error exceeds the per-shard sum for {q:?}"
                );
            }
        }
    }
}

fn index_cfg(vocab: u32) -> IndexConfig {
    let mut model = DeepSetsConfig::lsm(vocab);
    model.compression = CompressionKind::None;
    IndexConfig {
        model,
        guided: GuidedConfig {
            warmup_epochs: 25,
            rounds: 1,
            epochs_per_round: 15,
            percentile: 0.9,
            batch_size: 64,
            learning_rate: 5e-3,
            seed: 5,
        },
        max_subset_size: 2,
        range_length: 16.0,
        target: PositionTarget::First,
    }
}

#[test]
fn sharded_index_returns_the_unsharded_global_positions() {
    let c = GeneratorConfig::rw(150, 21).generate();
    let cfg = index_cfg(c.num_elements());
    let subsets = SubsetIndex::build(&c, 2);
    for n in SHARD_COUNTS {
        let sharded_c =
            ShardedCollection::partition(&c, ShardSpec::new(n, ShardBy::Range)).unwrap();
        let (index, _) = ShardedIndex::build(&sharded_c, &cfg).unwrap();
        for (q, info) in subsets.iter() {
            assert_eq!(
                index.lookup(&sharded_c, q),
                Some(info.first_pos as usize),
                "N={n}: wrong global first position for {q:?}"
            );
        }
        // The bound trait surface answers identically, in parallel too.
        let structure = ShardedIndexStructure::new(index, &sharded_c);
        let queries: Vec<ElementSet> =
            subsets.iter().take(60).map(|(s, _)| s.clone()).collect();
        let outcomes = structure.query_batch(&queries);
        assert_eq!(outcomes, structure.query_batch_parallel(&queries, 3), "N={n}");
        for (q, outcome) in queries.iter().zip(&outcomes) {
            assert_eq!(
                outcome.value,
                subsets.get(q).map(|i| i.first_pos as usize),
                "N={n}: trait surface diverged for {q:?}"
            );
        }
    }
}

#[test]
fn sharded_bloom_has_no_false_negatives_at_any_shard_count() {
    let c = collection();
    let mut cfg = BloomConfig::new(DeepSetsConfig::lsm(c.num_elements()));
    cfg.epochs = 6;
    let workload = setlearn_data::workload::membership_queries(&c, 150, 150, 2, cfg.seed);
    let queries: Vec<ElementSet> = workload.iter().map(|(q, _)| q.clone()).collect();

    // N = 1 (range): the relabeling is the identity, so the sharded build is
    // the unsharded one bit-for-bit.
    let (unsharded, _) = LearnedBloom::build(&workload, &cfg);
    let one =
        ShardedCollection::partition(&c, ShardSpec::new(1, ShardBy::Range)).unwrap();
    let (sharded_one, _) = ShardedBloom::build(&one, &workload, &cfg).unwrap();
    assert_eq!(sharded_one.query_batch(&queries), unsharded.query_batch(&queries));

    for n in SHARD_COUNTS {
        let sharded_c =
            ShardedCollection::partition(&c, ShardSpec::new(n, ShardBy::Hash)).unwrap();
        let (filter, _) = ShardedBloom::build(&sharded_c, &workload, &cfg).unwrap();
        for (q, label) in &workload {
            if *label {
                assert!(filter.contains(q), "N={n}: false negative on {q:?}");
            }
        }
        let outcomes = filter.query_batch(&queries);
        assert_eq!(
            outcomes,
            filter.query_batch_parallel(&queries, 4),
            "N={n}: parallel/sequential divergence"
        );
    }
}
