//! End-to-end engine integration: SQL plans agree with the oracle, and the
//! learned UDF's answers track the exact counts.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn_data::GeneratorConfig;
use setlearn_engine::{Engine, ExecMode, SetTable};
use setlearn_nn::q_error;

#[test]
fn all_three_plans_run_and_exact_plans_agree() {
    let collection = GeneratorConfig::rw(1_000, 21).generate();
    let engine = Engine::new();
    engine.create_table(SetTable::from_collection("logs", collection.clone()), "tags");
    engine.create_index("logs").unwrap();

    let mut cfg = CardinalityConfig::new(DeepSetsConfig::clsm(collection.num_elements()));
    cfg.guided = GuidedConfig {
        warmup_epochs: 20,
        rounds: 1,
        epochs_per_round: 10,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 5e-3,
        seed: 1,
    };
    cfg.max_subset_size = 3;
    let (estimator, _) = LearnedCardinality::build(&collection, &cfg);
    engine.register_estimator("logs", estimator).unwrap();

    let mut total_qerr = 0.0;
    let mut n = 0;
    for (_, set) in collection.iter().take(40) {
        let lit = set[..set.len().min(2)]
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let base = format!("SELECT COUNT(*) FROM logs WHERE tags @> {{{lit}}}");
        let seq = engine.execute_sql(&format!("{base} USING seqscan")).unwrap();
        let idx = engine.execute_sql(&format!("{base} USING index")).unwrap();
        let est = engine.execute_sql(&format!("{base} USING estimate")).unwrap();
        assert_eq!(seq.count, idx.count, "exact plans disagree on {lit}");
        assert_eq!(seq.mode, ExecMode::SeqScan);
        assert_eq!(idx.mode, ExecMode::Index);
        assert!(!est.exact);
        total_qerr += q_error(est.count, seq.count.max(1.0), 1.0);
        n += 1;
    }
    let avg = total_qerr / n as f64;
    assert!(avg < 4.0, "estimator too far off inside the engine: {avg}");
}

#[test]
fn udf_memory_is_smaller_than_the_index() {
    let collection = GeneratorConfig::rw(2_000, 33).generate();
    let engine = Engine::new();
    engine.create_table(SetTable::from_collection("t", collection.clone()), "tags");
    engine.create_index("t").unwrap();
    let index_bytes = engine.index_size_bytes("t").unwrap();

    let mut cfg = CardinalityConfig::new(DeepSetsConfig::clsm(collection.num_elements()));
    cfg.guided.percentile = 1.0;
    cfg.guided.warmup_epochs = 2;
    cfg.guided.epochs_per_round = 1;
    let (estimator, _) = LearnedCardinality::build(&collection, &cfg);
    assert!(
        estimator.model_size_bytes() < index_bytes,
        "model {} vs index {}",
        estimator.model_size_bytes(),
        index_bytes
    );
}
