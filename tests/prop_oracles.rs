//! Property tests against independent oracles: the B+ tree against
//! `BTreeMap`, the inverted index against brute-force scans, subset
//! enumeration against the powerset, and the Zipf sampler's distribution
//! bounds.

use proptest::prelude::*;
use setlearn_baselines::BPlusTree;
use setlearn_data::set::{for_each_subset, normalize};
use setlearn_data::{SetCollection, Zipf};
use setlearn_engine::InvertedIndex;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// B+ tree behaves exactly like a BTreeMap<u64, Vec<u32>> multimap.
    #[test]
    fn bptree_matches_btreemap(
        ops in proptest::collection::vec((0u64..2_000, 0u32..10_000), 1..600),
        order in 4usize..64,
    ) {
        let mut tree = BPlusTree::new(order);
        let mut oracle: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for &(k, v) in &ops {
            tree.insert(k, v);
            let bucket = oracle.entry(k).or_default();
            let at = bucket.partition_point(|&p| p < v);
            bucket.insert(at, v);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), ops.len());
        for (k, vs) in &oracle {
            prop_assert_eq!(tree.get(*k), Some(vs.as_slice()));
            prop_assert_eq!(tree.first_position(*k), Some(vs[0]));
            prop_assert_eq!(tree.last_position(*k), Some(*vs.last().unwrap()));
        }
        // Ordered iteration matches the oracle exactly.
        let got: Vec<u64> = tree.iter().map(|(k, _)| k).collect();
        let want: Vec<u64> = oracle.keys().copied().collect();
        prop_assert_eq!(got, want);
        // Range scans agree on a random window.
        if let (Some(&lo), Some(&hi)) = (oracle.keys().next(), oracle.keys().last()) {
            let mid = lo + (hi - lo) / 2;
            let got: Vec<u64> = tree.range(lo, mid).iter().map(|&(k, _)| k).collect();
            let want: Vec<u64> = oracle.range(lo..=mid).map(|(&k, _)| k).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Inverted-index counts equal brute-force subset counts for arbitrary
    /// collections and queries.
    #[test]
    fn inverted_index_matches_bruteforce(
        raw_sets in proptest::collection::vec(
            proptest::collection::vec(0u32..40, 1..6), 1..60),
        raw_query in proptest::collection::vec(0u32..40, 1..4),
    ) {
        let collection = SetCollection::new(raw_sets, 40);
        let idx = InvertedIndex::build(&collection);
        let q = normalize(raw_query);
        prop_assert_eq!(idx.count_subset(&q), collection.cardinality(&q));
        let rows = idx.rows_with_subset(&q);
        prop_assert_eq!(rows.len() as u64, collection.cardinality(&q));
        prop_assert_eq!(rows.first().map(|&r| r as usize), collection.first_position(&q));
    }

    /// Capped subset enumeration equals the filtered powerset.
    #[test]
    fn subset_enumeration_matches_powerset(
        raw in proptest::collection::vec(0u32..30, 1..8),
        cap in 1usize..5,
    ) {
        let set = normalize(raw);
        prop_assume!(!set.is_empty());
        let mut enumerated: Vec<Vec<u32>> = Vec::new();
        for_each_subset(&set, cap, |s| enumerated.push(s.to_vec()));
        // Powerset via bitmask.
        let mut expected: Vec<Vec<u32>> = Vec::new();
        for mask in 1u32..(1 << set.len()) {
            if (mask.count_ones() as usize) <= cap {
                expected.push(
                    set.iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, &e)| e)
                        .collect(),
                );
            }
        }
        enumerated.sort();
        expected.sort();
        prop_assert_eq!(enumerated, expected);
    }

    /// Zipf samples stay in range and rank-0 dominates the tail for s > 0.
    #[test]
    fn zipf_is_in_range_and_head_heavy(n in 2usize..200, seed in 0u64..1000) {
        use rand::SeedableRng;
        let z = Zipf::new(n, 1.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut head = 0usize;
        let mut tail = 0usize;
        for _ in 0..500 {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            if r == 0 {
                head += 1;
            } else if r >= n / 2 {
                tail += 1;
            }
        }
        // For s = 1.2 the single head rank should outweigh the entire upper
        // half of the support on average; allow generous slack.
        prop_assert!(head * 3 > tail, "head {head} vs tail-half {tail} (n {n})");
    }
}
